"""Unit tests for the provenance-aware operators (Algorithms 1-4)."""

import pytest

from repro.data.tuples import make_schema
from repro.data.update import Update, UpdateType, delete, insert
from repro.data.window import SlidingWindow
from repro.operators import (
    AggregateFunction,
    AggregateSelection,
    AggregateSpec,
    DistributedScan,
    DuplicateElimination,
    FixpointOperator,
    GroupByAggregate,
    MinShipOperator,
    PipelinedHashJoin,
    Projection,
    Selection,
    ShipMode,
    ShipOperator,
)
from repro.net.partition import HashPartitioner
from repro.operators.aggsel import AggregateFunctionKind
from repro.operators.scan import ScanRoute
from repro.provenance import AbsorptionProvenanceStore
from repro.provenance.tracker import NullProvenanceStore

LINK = make_schema("link", ["src", "dst"])
REACH = make_schema("reachable", ["src", "dst"])
PATH = make_schema("path", ["src", "dst", "cost", "length"])
SIZE = make_schema("size", ["region", "count"])


@pytest.fixture()
def store():
    return AbsorptionProvenanceStore()


def pv(store, *names):
    return store.annotation_from_products([names])


class TestFixpointOperator:
    def test_first_derivation_propagates(self, store):
        fixpoint = FixpointOperator("fp", store)
        out = fixpoint.process(insert(REACH.tuple("A", "B"), provenance=pv(store, "p1")))
        assert len(out) == 1
        assert REACH.tuple("A", "B") in fixpoint

    def test_duplicate_derivation_suppressed(self, store):
        fixpoint = FixpointOperator("fp", store)
        fixpoint.process(insert(REACH.tuple("A", "B"), provenance=pv(store, "p1")))
        out = fixpoint.process(insert(REACH.tuple("A", "B"), provenance=pv(store, "p1")))
        assert out == []

    def test_absorbed_derivation_suppressed(self, store):
        fixpoint = FixpointOperator("fp", store)
        fixpoint.process(insert(REACH.tuple("A", "B"), provenance=pv(store, "p1")))
        out = fixpoint.process(
            insert(REACH.tuple("A", "B"), provenance=pv(store, "p1", "p2"))
        )
        assert out == []

    def test_new_alternative_derivation_propagates_delta(self, store):
        fixpoint = FixpointOperator("fp", store)
        fixpoint.process(insert(REACH.tuple("A", "B"), provenance=pv(store, "p1")))
        out = fixpoint.process(insert(REACH.tuple("A", "B"), provenance=pv(store, "p2")))
        assert len(out) == 1
        delta = out[0].provenance
        assert not store.is_zero(delta)
        assert store.is_zero(store.conjoin(delta, pv(store, "p1")))

    def test_purge_base_removes_dead_tuples(self, store):
        fixpoint = FixpointOperator("fp", store)
        fixpoint.process(insert(REACH.tuple("A", "B"), provenance=pv(store, "p1")))
        fixpoint.process(insert(REACH.tuple("A", "C"), provenance=pv(store, "p1", "p2")))
        outs = fixpoint.purge_base(["p2"])
        assert [u.tuple for u in outs] == [REACH.tuple("A", "C")]
        assert REACH.tuple("A", "B") in fixpoint
        assert REACH.tuple("A", "C") not in fixpoint

    def test_purge_base_keeps_alternatively_derivable(self, store):
        fixpoint = FixpointOperator("fp", store)
        fixpoint.process(
            insert(
                REACH.tuple("C", "B"),
                provenance=store.annotation_from_products([["p4"], ["p1", "p3"]]),
            )
        )
        outs = fixpoint.purge_base(["p4"])
        assert outs == []
        assert REACH.tuple("C", "B") in fixpoint

    def test_set_semantics_deletion(self):
        store = NullProvenanceStore()
        fixpoint = FixpointOperator("fp", store)
        fixpoint.process(insert(REACH.tuple("A", "B")))
        out = fixpoint.process(delete(REACH.tuple("A", "B")))
        assert len(out) == 1 and out[0].is_delete
        assert REACH.tuple("A", "B") not in fixpoint
        assert fixpoint.process(delete(REACH.tuple("A", "B"))) == []

    def test_set_semantics_duplicate_insert_suppressed(self):
        store = NullProvenanceStore()
        fixpoint = FixpointOperator("fp", store)
        assert len(fixpoint.process(insert(REACH.tuple("A", "B")))) == 1
        assert fixpoint.process(insert(REACH.tuple("A", "B"))) == []

    def test_state_bytes_grows(self, store):
        fixpoint = FixpointOperator("fp", store)
        empty = fixpoint.state_bytes()
        fixpoint.process(insert(REACH.tuple("A", "B"), provenance=pv(store, "p1")))
        assert fixpoint.state_bytes() > empty

    def test_view_tuples_and_annotation(self, store):
        fixpoint = FixpointOperator("fp", store)
        fixpoint.process(insert(REACH.tuple("A", "B"), provenance=pv(store, "p1")))
        assert fixpoint.view_tuples() == [REACH.tuple("A", "B")]
        assert not store.is_zero(fixpoint.annotation_of(REACH.tuple("A", "B")))
        assert fixpoint.annotation_of(REACH.tuple("Z", "Z")) is None


class TestPipelinedHashJoin:
    def _join(self, store):
        return PipelinedHashJoin(
            "join",
            store,
            left_key=lambda t: t["dst"],
            right_key=lambda t: t["src"],
            combine=lambda edge, view: REACH.tuple(edge["src"], view["dst"]),
        )

    def test_insert_then_probe(self, store):
        join = self._join(store)
        assert join.process_left(insert(LINK.tuple("A", "B"), provenance=pv(store, "p1"))) == []
        out = join.process_right(insert(REACH.tuple("B", "C"), provenance=pv(store, "p2")))
        assert len(out) == 1
        assert out[0].tuple == REACH.tuple("A", "C")
        assert store.equals(out[0].provenance, pv(store, "p1", "p2"))

    def test_probe_other_direction(self, store):
        join = self._join(store)
        join.process_right(insert(REACH.tuple("B", "C"), provenance=pv(store, "p2")))
        out = join.process_left(insert(LINK.tuple("A", "B"), provenance=pv(store, "p1")))
        assert len(out) == 1
        assert out[0].tuple == REACH.tuple("A", "C")

    def test_duplicate_edge_suppressed(self, store):
        join = self._join(store)
        join.process_right(insert(REACH.tuple("B", "C"), provenance=pv(store, "p2")))
        join.process_left(insert(LINK.tuple("A", "B"), provenance=pv(store, "p1")))
        assert join.process_left(insert(LINK.tuple("A", "B"), provenance=pv(store, "p1"))) == []

    def test_combiner_rejection(self, store):
        join = PipelinedHashJoin(
            "join",
            store,
            left_key=lambda t: t["dst"],
            right_key=lambda t: t["src"],
            combine=lambda edge, view: None,
        )
        join.process_left(insert(LINK.tuple("A", "B"), provenance=pv(store, "p1")))
        assert join.process_right(insert(REACH.tuple("B", "C"), provenance=pv(store, "p2"))) == []

    def test_purge_base_removes_state(self, store):
        join = self._join(store)
        join.process_left(insert(LINK.tuple("A", "B"), provenance=pv(store, "p1")))
        join.process_right(insert(REACH.tuple("B", "C"), provenance=pv(store, "p2")))
        join.purge_base(["p1"])
        assert join.left_tuples() == []
        assert join.right_tuples() == [REACH.tuple("B", "C")]

    def test_set_semantics_delete_cascades(self):
        store = NullProvenanceStore()
        join = self._join(store)
        join.process_left(insert(LINK.tuple("A", "B")))
        join.process_right(insert(REACH.tuple("B", "C")))
        out = join.process_left(delete(LINK.tuple("A", "B")))
        assert len(out) == 1
        assert out[0].is_delete and out[0].tuple == REACH.tuple("A", "C")

    def test_window_expiration_generates_deletions(self, store):
        join = PipelinedHashJoin(
            "join",
            store,
            left_key=lambda t: t["dst"],
            right_key=lambda t: t["src"],
            combine=lambda edge, view: REACH.tuple(edge["src"], view["dst"]),
            left_window=SlidingWindow(10.0),
        )
        join.process_left(
            insert(LINK.tuple("A", "B"), provenance=pv(store, "p1"), timestamp=0.0)
        )
        join.process_right(
            insert(REACH.tuple("B", "C"), provenance=pv(store, "p2"), timestamp=1.0)
        )
        out = join.process_left(
            insert(LINK.tuple("X", "Y"), provenance=pv(store, "p3"), timestamp=100.0)
        )
        deletes = [u for u in out if u.is_delete]
        assert any(u.tuple == REACH.tuple("A", "C") for u in deletes)
        assert LINK.tuple("A", "B") not in join.left_tuples()

    def test_clear_left(self, store):
        join = self._join(store)
        join.process_left(insert(LINK.tuple("A", "B"), provenance=pv(store, "p1")))
        join.clear_left()
        assert join.left_tuples() == []

    def test_state_bytes(self, store):
        join = self._join(store)
        before = join.state_bytes()
        join.process_left(insert(LINK.tuple("A", "B"), provenance=pv(store, "p1")))
        assert join.state_bytes() > before


class TestMinShip:
    def test_first_derivation_ships_immediately(self, store):
        ship = MinShipOperator("ms", store, mode=ShipMode.LAZY)
        out = ship.process(insert(REACH.tuple("A", "B"), provenance=pv(store, "p1")))
        assert len(out) == 1

    def test_lazy_buffers_alternate_derivations(self, store):
        ship = MinShipOperator("ms", store, mode=ShipMode.LAZY)
        ship.process(insert(REACH.tuple("A", "B"), provenance=pv(store, "p1")))
        out = ship.process(insert(REACH.tuple("A", "B"), provenance=pv(store, "p2")))
        assert out == []
        assert REACH.tuple("A", "B") in ship.pending_insertions

    def test_absorbed_derivation_not_buffered(self, store):
        ship = MinShipOperator("ms", store, mode=ShipMode.LAZY)
        ship.process(insert(REACH.tuple("A", "B"), provenance=pv(store, "p1")))
        out = ship.process(insert(REACH.tuple("A", "B"), provenance=pv(store, "p1", "p2")))
        assert out == []
        assert REACH.tuple("A", "B") not in ship.pending_insertions

    def test_eager_flush_ships_buffered_derivations(self, store):
        ship = MinShipOperator("ms", store, mode=ShipMode.EAGER, batch_size=100)
        ship.process(insert(REACH.tuple("A", "B"), provenance=pv(store, "p1")))
        ship.process(insert(REACH.tuple("A", "B"), provenance=pv(store, "p2")))
        flushed = ship.flush()
        assert len(flushed) == 1
        assert flushed[0].tuple == REACH.tuple("A", "B")

    def test_eager_auto_flush_at_batch_size(self, store):
        ship = MinShipOperator("ms", store, mode=ShipMode.EAGER, batch_size=1)
        ship.process(insert(REACH.tuple("A", "B"), provenance=pv(store, "p1")))
        out = ship.process(insert(REACH.tuple("A", "B"), provenance=pv(store, "p2")))
        assert len(out) == 1

    def test_lazy_flush_keeps_buffer(self, store):
        ship = MinShipOperator("ms", store, mode=ShipMode.LAZY)
        ship.process(insert(REACH.tuple("A", "B"), provenance=pv(store, "p1")))
        ship.process(insert(REACH.tuple("A", "B"), provenance=pv(store, "p2")))
        assert ship.flush() == []
        assert REACH.tuple("A", "B") in ship.pending_insertions

    def test_purge_releases_buffered_alternates(self, store):
        ship = MinShipOperator("ms", store, mode=ShipMode.LAZY)
        ship.process(insert(REACH.tuple("A", "B"), provenance=pv(store, "p1")))
        ship.process(insert(REACH.tuple("A", "B"), provenance=pv(store, "p2")))
        released = ship.purge_base(["p1"])
        assert len(released) == 1
        assert released[0].is_insert
        assert store.equals(released[0].provenance, pv(store, "p2"))

    def test_purge_without_alternates_releases_nothing(self, store):
        ship = MinShipOperator("ms", store, mode=ShipMode.LAZY)
        ship.process(insert(REACH.tuple("A", "B"), provenance=pv(store, "p1")))
        assert ship.purge_base(["p1"]) == []

    def test_invalid_batch_size(self, store):
        with pytest.raises(ValueError):
            MinShipOperator("ms", store, batch_size=0)

    def test_plain_ship_forwards_everything(self):
        ship = ShipOperator("ship", NullProvenanceStore())
        update = insert(REACH.tuple("A", "B"))
        assert ship.process(update) == [update]
        assert ship.state_bytes() == 0

    def test_state_bytes(self, store):
        ship = MinShipOperator("ms", store, mode=ShipMode.LAZY)
        ship.process(insert(REACH.tuple("A", "B"), provenance=pv(store, "p1")))
        assert ship.state_bytes() > 0


class TestAggregateSelection:
    def _aggsel(self, store, multi=False):
        specs = [AggregateSpec(("src", "dst"), "cost", AggregateFunctionKind.MIN)]
        if multi:
            specs.append(AggregateSpec(("src", "dst"), "length", AggregateFunctionKind.MIN))
        return AggregateSelection(store, specs)

    def test_first_tuple_passes(self, store):
        aggsel = self._aggsel(store)
        out = aggsel.process(insert(PATH.tuple("A", "B", 5, 2), provenance=pv(store, "p1")))
        assert len(out) == 1

    def test_worse_tuple_suppressed(self, store):
        aggsel = self._aggsel(store)
        aggsel.process(insert(PATH.tuple("A", "B", 5, 2), provenance=pv(store, "p1")))
        out = aggsel.process(insert(PATH.tuple("A", "B", 9, 3), provenance=pv(store, "p2")))
        assert out == []
        assert aggsel.suppressed_count >= 1

    def test_better_tuple_displaces_old_best(self, store):
        aggsel = self._aggsel(store)
        aggsel.process(insert(PATH.tuple("A", "B", 5, 2), provenance=pv(store, "p1")))
        out = aggsel.process(insert(PATH.tuple("A", "B", 3, 4), provenance=pv(store, "p2")))
        kinds = [(u.type, u.tuple["cost"]) for u in out]
        assert (UpdateType.DEL, 5) in kinds
        assert (UpdateType.INS, 3) in kinds

    def test_multi_aggregate_keeps_both_winners(self, store):
        aggsel = self._aggsel(store, multi=True)
        aggsel.process(insert(PATH.tuple("A", "B", 5, 2), provenance=pv(store, "p1")))
        # Worse cost but better hop count: survives because of the second aggregate.
        out = aggsel.process(insert(PATH.tuple("A", "B", 9, 1), provenance=pv(store, "p2")))
        assert any(u.is_insert and u.tuple["length"] == 1 for u in out)

    def test_deleting_best_promotes_next(self, store):
        aggsel = self._aggsel(store)
        aggsel.process(insert(PATH.tuple("A", "B", 5, 2), provenance=pv(store, "p1")))
        aggsel.process(insert(PATH.tuple("A", "B", 7, 3), provenance=pv(store, "p2")))
        out = aggsel.purge_base(["p1"])
        ins = [u for u in out if u.is_insert]
        assert any(u.tuple["cost"] == 7 for u in ins)
        assert aggsel.best_for(("A", "B"))["cost"] == 7

    def test_deleting_non_best_is_silent(self, store):
        aggsel = self._aggsel(store)
        aggsel.process(insert(PATH.tuple("A", "B", 5, 2), provenance=pv(store, "p1")))
        aggsel.process(insert(PATH.tuple("A", "B", 7, 3), provenance=pv(store, "p2")))
        out = aggsel.purge_base(["p2"])
        assert all(not u.is_insert for u in out)
        assert aggsel.best_for(("A", "B"))["cost"] == 5

    def test_delete_before_insert_ignored(self, store):
        aggsel = self._aggsel(store)
        assert aggsel.process(delete(PATH.tuple("A", "B", 5, 2), provenance=pv(store, "p1"))) == []

    def test_different_groups_are_independent(self, store):
        aggsel = self._aggsel(store)
        out1 = aggsel.process(insert(PATH.tuple("A", "B", 5, 2), provenance=pv(store, "p1")))
        out2 = aggsel.process(insert(PATH.tuple("A", "C", 9, 3), provenance=pv(store, "p2")))
        assert len(out1) == 1 and len(out2) == 1

    def test_requires_specs(self, store):
        with pytest.raises(ValueError):
            AggregateSelection(store, [])

    def test_requires_consistent_groups(self, store):
        with pytest.raises(ValueError):
            AggregateSelection(
                store,
                [
                    AggregateSpec(("src", "dst"), "cost"),
                    AggregateSpec(("src",), "length"),
                ],
            )

    def test_state_bytes(self, store):
        aggsel = self._aggsel(store)
        aggsel.process(insert(PATH.tuple("A", "B", 5, 2), provenance=pv(store, "p1")))
        assert aggsel.state_bytes() > 0

    def test_max_aggregate(self, store):
        aggsel = AggregateSelection(
            store, [AggregateSpec(("src", "dst"), "cost", AggregateFunctionKind.MAX)]
        )
        aggsel.process(insert(PATH.tuple("A", "B", 5, 2), provenance=pv(store, "p1")))
        out = aggsel.process(insert(PATH.tuple("A", "B", 9, 3), provenance=pv(store, "p2")))
        assert any(u.is_insert and u.tuple["cost"] == 9 for u in out)


class TestGroupByAggregate:
    def _schema(self):
        return SIZE

    def test_count(self):
        agg = GroupByAggregate(
            "sizes", SIZE, ["region"], AggregateFunction.COUNT, value_attribute=None
        )
        member = make_schema("activeRegion", ["sensor", "region"])
        agg.process(insert(member.tuple("s1", "r1")))
        out = agg.process(insert(member.tuple("s2", "r1")))
        assert any(u.is_insert and u.tuple["count"] == 2 for u in out)
        assert agg.value_for("r1") == 2

    def test_min_with_deletion(self):
        out_schema = make_schema("minCost", ["src", "cost"])
        agg = GroupByAggregate(
            "min", out_schema, ["src"], AggregateFunction.MIN, value_attribute="cost"
        )
        path = make_schema("path", ["src", "cost"])
        agg.process(insert(path.tuple("A", 5)))
        agg.process(insert(path.tuple("A", 3)))
        assert agg.value_for("A") == 3
        out = agg.process(delete(path.tuple("A", 3)))
        assert any(u.is_insert and u.tuple["cost"] == 5 for u in out)

    def test_sum_and_avg(self):
        sum_schema = make_schema("total", ["src", "total"])
        agg = GroupByAggregate(
            "sum", sum_schema, ["src"], AggregateFunction.SUM, value_attribute="cost"
        )
        path = make_schema("path", ["src", "cost"])
        agg.process(insert(path.tuple("A", 5)))
        agg.process(insert(path.tuple("A", 3)))
        assert agg.value_for("A") == 8

        avg_schema = make_schema("avg", ["src", "avg"])
        avg = GroupByAggregate(
            "avg", avg_schema, ["src"], AggregateFunction.AVG, value_attribute="cost"
        )
        avg.process(insert(path.tuple("A", 5)))
        avg.process(insert(path.tuple("A", 3)))
        assert avg.value_for("A") == 4

    def test_group_emptied_emits_delete(self):
        out_schema = make_schema("minCost", ["src", "cost"])
        agg = GroupByAggregate(
            "min", out_schema, ["src"], AggregateFunction.MIN, value_attribute="cost"
        )
        path = make_schema("path", ["src", "cost"])
        agg.process(insert(path.tuple("A", 5)))
        out = agg.process(delete(path.tuple("A", 5)))
        assert len(out) == 1 and out[0].is_delete
        assert agg.value_for("A") is None

    def test_delete_of_unknown_value_ignored(self):
        out_schema = make_schema("minCost", ["src", "cost"])
        agg = GroupByAggregate(
            "min", out_schema, ["src"], AggregateFunction.MIN, value_attribute="cost"
        )
        path = make_schema("path", ["src", "cost"])
        assert agg.process(delete(path.tuple("A", 5))) == []

    def test_requires_value_attribute(self):
        with pytest.raises(ValueError):
            GroupByAggregate("bad", SIZE, ["region"], AggregateFunction.MIN)

    def test_output_schema_arity_check(self):
        bad = make_schema("bad", ["region", "x", "y"])
        with pytest.raises(ValueError):
            GroupByAggregate("bad", bad, ["region"], AggregateFunction.COUNT)

    def test_results_and_state(self):
        agg = GroupByAggregate(
            "sizes", SIZE, ["region"], AggregateFunction.COUNT, value_attribute=None
        )
        member = make_schema("activeRegion", ["sensor", "region"])
        agg.process(insert(member.tuple("s1", "r1")))
        assert len(agg.results()) == 1
        assert agg.state_bytes() > 0


class TestRelationalOperators:
    def test_selection(self, store):
        select = Selection("sel", store, lambda t: t["dst"] == "B")
        assert len(select.process(insert(LINK.tuple("A", "B")))) == 1
        assert select.process(insert(LINK.tuple("A", "C"))) == []
        assert select.state_bytes() == 0

    def test_projection_merges_provenance(self, store):
        out_schema = make_schema("src_only", ["src"])
        project = Projection("proj", store, out_schema, ["src"])
        first = project.process(insert(LINK.tuple("A", "B"), provenance=pv(store, "p1")))
        assert len(first) == 1
        second = project.process(insert(LINK.tuple("A", "C"), provenance=pv(store, "p2")))
        assert len(second) == 1  # new derivation of the same projected tuple
        third = project.process(insert(LINK.tuple("A", "B"), provenance=pv(store, "p1")))
        assert third == []
        assert project.current_tuples() == [out_schema.tuple("A")]

    def test_projection_purge(self, store):
        out_schema = make_schema("src_only", ["src"])
        project = Projection("proj", store, out_schema, ["src"])
        project.process(insert(LINK.tuple("A", "B"), provenance=pv(store, "p1")))
        dead = project.purge_base(["p1"])
        assert len(dead) == 1 and dead[0].is_delete

    def test_duplicate_elimination(self, store):
        dedup = DuplicateElimination("dedup", store)
        assert len(dedup.process(insert(LINK.tuple("A", "B"), provenance=pv(store, "p1")))) == 1
        assert dedup.process(insert(LINK.tuple("A", "B"), provenance=pv(store, "p1"))) == []

    def test_dedup_set_semantics_delete(self):
        store = NullProvenanceStore()
        dedup = DuplicateElimination("dedup", store)
        dedup.process(insert(LINK.tuple("A", "B")))
        out = dedup.process(delete(LINK.tuple("A", "B")))
        assert len(out) == 1 and out[0].is_delete


class TestDistributedScan:
    def test_routes_base_and_edge_copies(self, store):
        partitioner = HashPartitioner(4)
        scan = DistributedScan(
            "scan",
            store,
            partitioner,
            routes=[
                ScanRoute(port="view", partition_attribute="src",
                          transform=lambda t: REACH.tuple(t["src"], t["dst"])),
                ScanRoute(port="edge", partition_attribute="dst"),
            ],
        )
        routed = scan.route(insert(LINK.tuple("A", "B")))
        assert len(routed) == 2
        ports = {r.port for r in routed}
        assert ports == {"view", "edge"}
        view_route = next(r for r in routed if r.port == "view")
        assert view_route.update.tuple.relation == "reachable"
        assert view_route.node == partitioner.node_for("A")

    def test_transform_can_skip_route(self, store):
        partitioner = HashPartitioner(2)
        scan = DistributedScan(
            "scan",
            store,
            partitioner,
            routes=[ScanRoute(port="view", partition_attribute="src", transform=lambda t: None)],
        )
        assert scan.route(insert(LINK.tuple("A", "B"))) == []
        assert scan.process(insert(LINK.tuple("A", "B"))) == []

    def test_requires_routes(self, store):
        with pytest.raises(ValueError):
            DistributedScan("scan", store, HashPartitioner(2), routes=[])
