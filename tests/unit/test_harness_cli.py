"""Unit tests for the harness CLI, report helpers and configuration."""

import pytest

from repro.harness.cli import EXPERIMENTS, main
from repro.harness.config import DEFAULT_CONFIG, PAPER_SCALE_CONFIG, QUICK_CONFIG
from repro.harness.report import format_rows, print_figure, rows_to_csv


class TestConfig:
    def test_default_scales_are_ordered(self):
        assert QUICK_CONFIG.nodes_per_stub <= DEFAULT_CONFIG.nodes_per_stub
        assert DEFAULT_CONFIG.nodes_per_stub <= PAPER_SCALE_CONFIG.nodes_per_stub
        assert PAPER_SCALE_CONFIG.link_budgets[-1] == 800

    def test_describe_mentions_processors(self):
        assert "processors" in DEFAULT_CONFIG.describe()


class TestReport:
    def test_format_rows_aligns_columns(self):
        rows = [{"a": 1, "b": "x"}, {"a": 22, "b": "yy", "c": 3.14159}]
        table = format_rows(rows)
        lines = table.splitlines()
        assert lines[0].startswith("a")
        assert "3.142" in table

    def test_rows_to_csv_includes_all_columns(self):
        rows = [{"a": 1}, {"b": 2}]
        csv_text = rows_to_csv(rows)
        assert csv_text.splitlines()[0] == "a,b"

    def test_print_figure(self, capsys):
        print_figure([{"a": 1}], title="demo title")
        captured = capsys.readouterr().out
        assert "demo title" in captured


class TestCli:
    def test_list_option(self, capsys):
        assert main(["--list"]) == 0
        output = capsys.readouterr().out
        assert "figure7" in output and "ablation-encoding" in output

    def test_no_arguments_lists(self, capsys):
        assert main([]) == 0
        assert "Available experiments" in capsys.readouterr().out

    def test_unknown_experiment_errors(self, capsys):
        with pytest.raises(SystemExit):
            main(["figure99"])

    def test_registry_matches_drivers(self):
        assert set(EXPERIMENTS) >= {f"figure{n}" for n in range(7, 15)}
        for driver, description in EXPERIMENTS.values():
            assert callable(driver) and description

    def test_runs_quick_experiment_and_writes_csv(self, tmp_path, capsys):
        exit_code = main(["--quick", "--csv-dir", str(tmp_path), "ablation-encoding"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "ablation-encoding" in output
        written = list(tmp_path.glob("*.csv"))
        assert len(written) == 1
        assert "encoding" in written[0].read_text()


class TestBatchingFlags:
    def test_batch_size_override(self, monkeypatch, capsys):
        captured = {}

        def fake_driver(config):
            captured["config"] = config
            return [{"figure": "batch-throughput", "ok": 1}]

        monkeypatch.setitem(
            EXPERIMENTS, "batch-throughput", (fake_driver, "test stub")
        )
        assert main(["--quick", "--batch-size", "7", "batch-throughput"]) == 0
        assert captured["config"].batch_size == 7

    def test_no_batching_flag(self, monkeypatch):
        captured = {}

        def fake_driver(config):
            captured["config"] = config
            return [{"figure": "batch-throughput"}]

        monkeypatch.setitem(
            EXPERIMENTS, "batch-throughput", (fake_driver, "test stub")
        )
        assert main(["--quick", "--no-batching", "batch-throughput"]) == 0
        assert captured["config"].batch_size == 1
        assert "tuple-at-a-time" in captured["config"].describe()

    def test_batch_ports_parsed(self, monkeypatch):
        captured = {}

        def fake_driver(config):
            captured["config"] = config
            return [{"figure": "batch-throughput"}]

        monkeypatch.setitem(
            EXPERIMENTS, "batch-throughput", (fake_driver, "test stub")
        )
        assert main(["--quick", "--batch-ports", "view,purge", "batch-throughput"]) == 0
        assert captured["config"].batch_ports == ("view", "purge")

    def test_invalid_batch_size_rejected(self):
        with pytest.raises(SystemExit):
            main(["--batch-size", "0", "figure7"])

    def test_registry_has_batch_throughput(self):
        assert "batch-throughput" in EXPERIMENTS

    def test_unknown_batch_port_rejected(self):
        with pytest.raises(SystemExit):
            main(["--quick", "--batch-ports", "veiw", "figure7"])


class TestElasticFlags:
    def test_registry_has_elastic(self):
        assert "elastic" in EXPERIMENTS

    def test_per_node_and_virtual_nodes_flags(self, monkeypatch):
        captured = {}

        def fake_driver(config):
            captured["config"] = config
            return [{"figure": "elastic"}]

        monkeypatch.setitem(EXPERIMENTS, "elastic", (fake_driver, "test stub"))
        assert main(["--quick", "--per-node", "--virtual-nodes", "16", "elastic"]) == 0
        assert captured["config"].per_node is True
        assert captured["config"].virtual_nodes == 16

    def test_per_node_defaults_off(self, monkeypatch):
        captured = {}

        def fake_driver(config):
            captured["config"] = config
            return [{"figure": "elastic"}]

        monkeypatch.setitem(EXPERIMENTS, "elastic", (fake_driver, "test stub"))
        assert main(["--quick", "elastic"]) == 0
        assert captured["config"].per_node is False

    def test_invalid_virtual_nodes_rejected(self):
        with pytest.raises(SystemExit):
            main(["--quick", "--virtual-nodes", "0", "elastic"])
