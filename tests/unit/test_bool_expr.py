"""Unit tests for the sum-of-products expression encoding (repro.bdd.expr)."""

import pytest

from repro.bdd.expr import (
    FALSE_EXPR,
    TRUE_EXPR,
    BoolExpr,
    Conjunction,
    Disjunction,
    Literal,
)


class TestConstruction:
    def test_false_has_no_products(self):
        assert BoolExpr.false().is_false()
        assert not BoolExpr.false().is_true()

    def test_true_contains_empty_product(self):
        assert BoolExpr.true().is_true()
        assert not BoolExpr.true().is_false()

    def test_variable(self):
        expr = BoolExpr.variable("p")
        assert expr.variables() == frozenset({"p"})
        assert not expr.is_false()

    def test_from_products_applies_absorption(self):
        expr = BoolExpr.from_products([["p1"], ["p1", "p2"]])
        assert expr == BoolExpr.variable("p1")

    def test_literal_and_conjunction_helpers(self):
        assert Literal("x") == BoolExpr.variable("x")
        assert Conjunction("x", "y") == BoolExpr.from_products([["x", "y"]])

    def test_disjunction_helper(self):
        expr = Disjunction(Literal("a"), Conjunction("a", "b"), Literal("c"))
        assert expr == BoolExpr.from_products([["a"], ["c"]])


class TestAlgebra:
    def test_or_absorbs(self):
        a, b = Literal("a"), Literal("b")
        assert (a | (a & b)) == a

    def test_and_distributes(self):
        a, b, c = Literal("a"), Literal("b"), Literal("c")
        assert (a & (b | c)) == ((a & b) | (a & c))

    def test_and_with_false(self):
        assert (Literal("a") & FALSE_EXPR).is_false()

    def test_or_with_true(self):
        assert (Literal("a") | TRUE_EXPR).is_true()

    def test_true_is_and_identity(self):
        a = Literal("a")
        assert (a & TRUE_EXPR) == a

    def test_false_is_or_identity(self):
        a = Literal("a")
        assert (a | FALSE_EXPR) == a

    def test_idempotent(self):
        a = Conjunction("a", "b")
        assert (a | a) == a
        assert (a & a) == a


class TestRestriction:
    def test_without_drops_products(self):
        expr = BoolExpr.from_products([["p1", "p2"], ["p3"]])
        assert expr.without(["p3"]) == Conjunction("p1", "p2")
        assert expr.without(["p1", "p3"]).is_false()

    def test_restrict_true_shrinks_product(self):
        expr = Conjunction("p1", "p2")
        assert expr.restrict({"p1": True}) == Literal("p2")

    def test_restrict_false_removes_product(self):
        expr = BoolExpr.from_products([["p1", "p2"], ["p3"]])
        assert expr.restrict({"p1": False}) == Literal("p3")

    def test_evaluate(self):
        expr = BoolExpr.from_products([["p1", "p2"], ["p3"]])
        assert expr.evaluate({"p3": True})
        assert expr.evaluate({"p1": True, "p2": True})
        assert not expr.evaluate({"p1": True})
        assert not expr.evaluate({})


class TestMetrics:
    def test_literal_count(self):
        expr = BoolExpr.from_products([["p1", "p2"], ["p3"]])
        assert expr.literal_count() == 3

    def test_size_bytes_positive(self):
        assert FALSE_EXPR.size_bytes() > 0
        assert Conjunction("a", "b").size_bytes() > Literal("a").size_bytes()

    def test_repr(self):
        assert "False" in repr(FALSE_EXPR)
        assert "True" in repr(TRUE_EXPR)
        assert "a" in repr(Literal("a"))

    def test_hashable_and_frozen(self):
        expr = Conjunction("a", "b")
        assert expr in {expr}
        with pytest.raises(AttributeError):
            expr.products = frozenset()
