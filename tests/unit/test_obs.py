"""Unit tests for the observability layer: tracer, metrics registry, export."""

import json

import pytest

from repro.engine.strategy import ExecutionStrategy
from repro.obs.export import (
    chrome_trace_dict,
    load_trace_events,
    trace_summary,
    validate_chrome_trace,
    validate_flow_balance,
    validate_span_nesting,
    validate_track_monotonicity,
    write_metrics_json,
    write_trace,
)
from repro.obs.metrics import (
    Histogram,
    MetricsLog,
    MetricsRegistry,
    current_metrics_log,
    install_metrics_log,
)
from repro.obs.trace import (
    CONTROL_PID,
    GC_TID,
    HARNESS_PID,
    KERNEL_TID,
    NULL_TRACER,
    NullTracer,
    Tracer,
    current_tracer,
    install_tracer,
)
from repro.queries import build_executor, reachability_plan
from repro.workloads import TransitStubConfig, generate_topology

TINY_TOPOLOGY = generate_topology(
    TransitStubConfig(nodes_per_stub=2, stubs_per_transit=2, dense=True, seed=5)
)


@pytest.fixture
def tracer():
    t = Tracer()
    previous = install_tracer(t)
    yield t
    install_tracer(previous if isinstance(previous, Tracer) else None)


class TestNullTracer:
    def test_disabled_and_noop(self):
        null = NullTracer()
        assert null.enabled is False
        assert null.begin(0, "x", "cat") is None
        assert null.end(None) is None
        assert null.instant(0, "x", "cat") is None
        assert null.flow_start(0) is None
        assert null.flow_finish(None, 0) is None
        assert null.kernel_slice(0, 1.0) is None
        assert null.context_pid(42) == 42

    def test_default_active_tracer_is_null(self):
        assert current_tracer() is NULL_TRACER
        assert current_tracer().enabled is False

    def test_install_and_restore(self):
        t = Tracer()
        previous = install_tracer(t)
        try:
            assert current_tracer() is t
        finally:
            install_tracer(None)
        assert current_tracer() is NULL_TRACER
        assert previous is NULL_TRACER


class TestTracer:
    def test_span_records_duration_and_args(self):
        t = Tracer()
        span = t.begin(3, "work", "operator", sim_ts=1.5, args={"n": 7})
        t.end(span, args={"out": 2}, sim_ts=2.0)
        assert span["ph"] == "X"
        assert span["dur"] >= 0
        assert span["args"] == {"n": 7, "sim": 1.5, "out": 2, "sim_end": 2.0}
        assert t.open_span_count() == 0

    def test_nested_spans_balance(self):
        t = Tracer()
        outer = t.begin(0, "outer", "net")
        inner = t.begin(0, "inner", "routing")
        assert t.open_span_count() == 2
        t.end(inner)
        t.end(outer)
        assert t.open_span_count() == 0
        assert validate_span_nesting(t.events) == []

    def test_finish_closes_dangling_spans(self):
        t = Tracer()
        t.begin(0, "left-open", "net")
        t.begin(0, "also-open", "net")
        t.finish()
        assert t.open_span_count() == 0
        assert all(e["dur"] >= 0 for e in t.events)

    def test_flow_ids_increment_and_land(self):
        t = Tracer()
        first = t.flow_start(0, sim_ts=0.1)
        second = t.flow_start(1)
        assert second == first + 1
        t.flow_finish(first, 2)
        t.flow_finish(None, 2)  # ignored
        phases = [e["ph"] for e in t.events]
        assert phases.count("s") == 2 and phases.count("f") == 1

    def test_kernel_slice_ends_now(self):
        t = Tracer()
        t.kernel_slice(4, 0.001, sim_ts=0.5)
        t.kernel_slice(4, 0.0)  # zero seconds -> skipped
        t.kernel_slice(4, -1.0)  # negative -> skipped
        slices = [e for e in t.events if e["tid"] == KERNEL_TID]
        assert len(slices) == 1
        event = slices[0]
        assert event["cat"] == "kernel"
        assert event["dur"] == pytest.approx(1000.0)
        assert event["ts"] + event["dur"] <= t._now_us() + 1.0

    def test_node_context_attribution(self):
        t = Tracer()
        assert t.context_pid(99) == 99
        t.set_node_context(3)
        assert t.context_pid(99) == 3
        t.clear_node_context()
        assert t.context_pid(99) == 99

    def test_chrome_events_include_track_metadata(self):
        t = Tracer()
        t.end(t.begin(2, "x", "net"))
        t.instant(CONTROL_PID, "rebalance", "control")
        events = t.chrome_events()
        metadata = [e for e in events if e["ph"] == "M"]
        names = {
            e["args"]["name"] for e in metadata if e["name"] == "process_name"
        }
        assert "node 2" in names and "cluster-control" in names


class TestValidation:
    def test_partial_overlap_is_reported(self):
        events = [
            {"ph": "X", "pid": 0, "tid": 1, "name": "a", "cat": "x", "ts": 0.0, "dur": 10.0},
            {"ph": "X", "pid": 0, "tid": 1, "name": "b", "cat": "x", "ts": 5.0, "dur": 10.0},
        ]
        errors = validate_span_nesting(events)
        assert len(errors) == 1 and "overlaps" in errors[0]

    def test_proper_nesting_and_siblings_pass(self):
        events = [
            {"ph": "X", "pid": 0, "tid": 1, "name": "a", "cat": "x", "ts": 0.0, "dur": 10.0},
            {"ph": "X", "pid": 0, "tid": 1, "name": "b", "cat": "x", "ts": 1.0, "dur": 4.0},
            {"ph": "X", "pid": 0, "tid": 1, "name": "c", "cat": "x", "ts": 6.0, "dur": 4.0},
            {"ph": "X", "pid": 0, "tid": 1, "name": "d", "cat": "x", "ts": 20.0, "dur": 1.0},
        ]
        assert validate_span_nesting(events) == []

    def test_negative_duration_is_reported(self):
        events = [
            {"ph": "X", "pid": 0, "tid": 1, "name": "bad", "cat": "x", "ts": 0.0, "dur": -1.0}
        ]
        assert any("dur" in e for e in validate_span_nesting(events))


class TestAbsorb:
    """Merging worker traces must keep pids, flow ids and clocks collision-free."""

    @staticmethod
    def _worker_tracer(t0_offset):
        """A 'worker' tracer whose pids and flow ids overlap every other worker's."""
        worker = Tracer()
        worker._t0 -= t0_offset  # pretend it started earlier
        span = worker.begin(0, "deliver:edge", "net", sim_ts=0.1)
        worker.end(span)
        flow = worker.flow_start(0, sim_ts=0.2)
        worker.flow_finish(flow, 1)
        worker.kernel_slice(CONTROL_PID + 1, 0.0005)
        return worker

    def test_overlapping_workers_remap_cleanly(self):
        coordinator = Tracer()
        for wid in range(2):
            worker = self._worker_tracer(t0_offset=0.5 * (wid + 1))
            coordinator.absorb(
                worker.events,
                sorted(worker._tracks),
                worker._t0,
                pid_offset=(wid + 1) * 8,
                label=f"worker {wid}, pid {1000 + wid}",
            )
        events = coordinator.chrome_events()
        # Both workers started identical flow ids; the merge must keep them apart.
        assert validate_flow_balance(events) == []
        assert validate_track_monotonicity(events) == []
        starts = [e["id"] for e in events if e.get("ph") == "s"]
        assert len(starts) == len(set(starts)) == 2
        # Synthetic pids were remapped per worker; node pids were not.
        kernel_pids = {e["pid"] for e in events if e.get("cat") == "kernel"}
        assert len(kernel_pids) == 2
        assert all(pid >= CONTROL_PID for pid in kernel_pids)
        assert {e["pid"] for e in events if e.get("ph") == "s"} == {0}

    def test_unremapped_merge_is_detected(self):
        """Without the flow-id remap two workers' flows collide — the validator sees it."""
        coordinator = Tracer()
        for wid in range(2):
            worker = self._worker_tracer(t0_offset=0.1)
            coordinator.absorb(
                worker.events, sorted(worker._tracks), worker._t0, pid_offset=0
            )
        errors = validate_flow_balance(coordinator.events)
        assert errors and any("started twice" in error for error in errors)


class TestFlowAndMonotonicValidators:
    def test_flow_finish_without_start(self):
        events = [{"ph": "f", "id": 7, "pid": 0, "tid": 1, "ts": 1.0}]
        errors = validate_flow_balance(events)
        assert errors and "finished without a start" in errors[0]

    def test_dangling_starts_counted(self):
        events = [
            {"ph": "s", "id": 1, "pid": 0, "tid": 1, "ts": 1.0},
            {"ph": "s", "id": 2, "pid": 0, "tid": 1, "ts": 2.0},
        ]
        errors = validate_flow_balance(events)
        assert errors and "2" in errors[0]

    def test_finish_before_start_timestamp(self):
        events = [
            {"ph": "s", "id": 1, "pid": 0, "tid": 1, "ts": 10.0},
            {"ph": "f", "id": 1, "pid": 1, "tid": 1, "ts": 2.0},
        ]
        errors = validate_flow_balance(events)
        assert errors and "before" in errors[0]

    def test_balanced_flows_pass(self):
        events = [
            {"ph": "s", "id": 1, "pid": 0, "tid": 1, "ts": 1.0},
            {"ph": "f", "id": 1, "pid": 1, "tid": 1, "ts": 2.0},
        ]
        assert validate_flow_balance(events) == []

    def test_backwards_track_is_detected(self):
        events = [
            {"ph": "X", "pid": 0, "tid": 1, "ts": 100.0, "dur": 1.0, "name": "a"},
            {"ph": "X", "pid": 0, "tid": 1, "ts": 10.0, "dur": 1.0, "name": "b"},
        ]
        errors = validate_track_monotonicity(events)
        assert len(errors) == 1 and "runs backwards" in errors[0]

    def test_one_error_per_track(self):
        events = [
            {"ph": "X", "pid": 0, "tid": 1, "ts": 100.0, "dur": 1.0, "name": "a"},
            {"ph": "X", "pid": 0, "tid": 1, "ts": 10.0, "dur": 1.0, "name": "b"},
            {"ph": "X", "pid": 0, "tid": 1, "ts": 5.0, "dur": 1.0, "name": "c"},
        ]
        assert len(validate_track_monotonicity(events)) == 1

    def test_metadata_and_other_tracks_ignored(self):
        events = [
            {"ph": "M", "pid": 0, "tid": 1, "name": "process_name"},
            {"ph": "X", "pid": 0, "tid": 1, "ts": 5.0, "dur": 1.0, "name": "a"},
            {"ph": "X", "pid": 1, "tid": 1, "ts": 1.0, "dur": 1.0, "name": "b"},
        ]
        assert validate_track_monotonicity(events) == []


class TestExport:
    def test_json_round_trip(self, tmp_path):
        t = Tracer()
        t.end(t.begin(1, "x", "net"))
        path = tmp_path / "trace.json"
        write_trace(t, path)
        events = load_trace_events(path)
        spans = [e for e in events if e.get("ph") == "X"]
        assert len(spans) == 1 and spans[0]["name"] == "x"
        data = json.loads(path.read_text())
        assert "traceEvents" in data and data["displayTimeUnit"] == "ms"

    def test_jsonl_round_trip(self, tmp_path):
        t = Tracer()
        t.end(t.begin(1, "x", "net"))
        t.instant(1, "mark", "inject")
        path = tmp_path / "trace.jsonl"
        write_trace(t, path)
        lines = [l for l in path.read_text().splitlines() if l.strip()]
        assert all(json.loads(line) for line in lines)
        events = load_trace_events(path)
        assert trace_summary(events)["spans"] == 1

    def test_chrome_trace_dict_finishes(self):
        t = Tracer()
        t.begin(0, "open", "net")
        data = chrome_trace_dict(t)
        assert t.open_span_count() == 0
        assert any(e.get("ph") == "X" for e in data["traceEvents"])

    def test_validate_chrome_trace_missing_category(self, tmp_path):
        t = Tracer()
        t.end(t.begin(1, "x", "net"))
        path = tmp_path / "trace.json"
        write_trace(t, path)
        with pytest.raises(ValueError, match="missing span categories"):
            validate_chrome_trace(path, require_categories=["kernel"])

    def test_validate_chrome_trace_requires_node_tracks(self, tmp_path):
        t = Tracer()
        t.end(t.begin(HARNESS_PID, "only-synthetic", "harness"))
        path = tmp_path / "trace.json"
        write_trace(t, path)
        with pytest.raises(ValueError, match="per-node tracks"):
            validate_chrome_trace(path, require_node_tracks=1)

    def test_write_metrics_json(self, tmp_path):
        log = MetricsLog()
        log.record({"phase": "insert"}, {"a": 1})
        path = tmp_path / "metrics.json"
        write_metrics_json(log, path)
        data = json.loads(path.read_text())
        assert data["snapshots"][0]["phase"] == "insert"
        assert data["snapshots"][0]["metrics"] == {"a": 1}


class TestMetrics:
    def test_counter_and_gauge(self):
        registry = MetricsRegistry()
        registry.counter("events").inc()
        registry.counter("events").inc(4)
        value = {"x": 7}
        registry.gauge("depth", lambda: value["x"])
        snapshot = registry.snapshot()
        assert snapshot["events"] == 5
        assert snapshot["depth"] == 7
        value["x"] = 9
        assert registry.snapshot()["depth"] == 9

    def test_histogram_buckets_by_power_of_two(self):
        h = Histogram("sizes")
        for v in (0, 1, 2, 3, 4, 1000):
            h.observe(v)
        assert h.count == 6 and h.total == 1010 and h.max == 1000
        flat = h.as_flat()
        assert flat["sizes_count"] == 6
        assert flat["sizes_p2_0"] == 1  # the single 0
        assert flat["sizes_p2_1"] == 1  # 1
        assert flat["sizes_p2_2"] == 2  # 2, 3
        assert flat["sizes_p2_10"] == 1  # 1000

    def test_histogram_merge(self):
        a, b = Histogram("x"), Histogram("x")
        a.observe(4)
        b.observe(4)
        b.observe(70)
        a.merge(b)
        assert a.count == 3 and a.max == 70

    def test_probe_prefixing_and_delta(self):
        registry = MetricsRegistry()
        state = {"n": 10}
        registry.register_probe("net", lambda: {"messages": state["n"]})
        before = registry.snapshot()
        state["n"] = 25
        after = registry.snapshot()
        assert before["net.messages"] == 10
        delta = MetricsRegistry.delta(before, after)
        assert delta["net.messages"] == 15

    def test_metrics_log_install(self):
        assert current_metrics_log() is None
        log = MetricsLog()
        install_metrics_log(log)
        try:
            assert current_metrics_log() is log
        finally:
            install_metrics_log(None)
        assert current_metrics_log() is None


class TestTracedExecutor:
    """End-to-end: a traced run emits the full batch lifecycle."""

    @pytest.fixture
    def traced_run(self, tracer):
        executor = build_executor(
            reachability_plan(), ExecutionStrategy.absorption_lazy(), node_count=4
        )
        executor.insert_edges(TINY_TOPOLOGY.link_tuples())
        tracer.finish()
        return executor, tracer

    def test_all_phase_buckets_present(self, traced_run):
        _, t = traced_run
        categories = {e.get("cat") for e in t.events if e.get("ph") == "X"}
        assert {"net", "routing", "operator", "kernel", "gc", "phase"} <= categories

    def test_per_node_tracks(self, traced_run):
        executor, t = traced_run
        summary = trace_summary(t.events)
        assert set(summary["node_pids"]) == set(range(len(executor.nodes)))

    def test_nesting_is_valid(self, traced_run):
        _, t = traced_run
        assert validate_span_nesting(t.events) == []

    def test_flows_balance(self, traced_run):
        _, t = traced_run
        summary = trace_summary(t.events)
        assert summary["flow_starts"] > 0
        assert summary["flow_finishes"] == summary["flow_starts"]

    def test_untraced_executor_has_no_tracer_on_hot_path(self):
        install_tracer(None)
        executor = build_executor(
            reachability_plan(), ExecutionStrategy.absorption_lazy(), node_count=4
        )
        assert executor.network._tracer is None
        assert all(node._tracer is None for node in executor.nodes)
        assert all(node.router.tracer is None for node in executor.nodes)

    def test_metrics_registry_snapshot_covers_subsystems(self):
        executor = build_executor(
            reachability_plan(), ExecutionStrategy.absorption_lazy(), node_count=4
        )
        executor.insert_edges(TINY_TOPOLOGY.link_tuples())
        snapshot = executor.metrics_registry.snapshot()
        assert snapshot["net.messages"] > 0
        assert snapshot["queue_depth.total"] == 0
        assert snapshot["routing.bulk_lookups"] > 0
        assert snapshot["kernel.kernel_time_s"] >= 0
        assert snapshot["fixpoint.round_delta_size_count"] > 0


class TestCliObservability:
    def test_trace_and_metrics_flags(self, tmp_path, capsys):
        from repro.harness.cli import main

        trace_path = tmp_path / "t.json"
        metrics_path = tmp_path / "m.json"
        exit_code = main(
            [
                "--quick",
                "--trace",
                str(trace_path),
                "--metrics-json",
                str(metrics_path),
                "ablation-encoding",
            ]
        )
        assert exit_code == 0
        assert current_tracer() is NULL_TRACER
        assert current_metrics_log() is None
        summary = validate_chrome_trace(
            trace_path,
            require_categories=["net", "routing", "operator", "kernel", "gc"],
        )
        assert summary["node_pids"]
        data = json.loads(metrics_path.read_text())
        assert data["snapshots"]
        output = capsys.readouterr().out
        assert "wrote trace" in output and "wrote metrics" in output

    def test_fig_alias(self, monkeypatch, capsys):
        from repro.harness.cli import EXPERIMENTS, main

        called = {}

        def fake_driver(config):
            called["ran"] = True
            return [{"figure": "11"}]

        monkeypatch.setitem(EXPERIMENTS, "figure11", (fake_driver, "stub"))
        assert main(["--quick", "fig11"]) == 0
        assert called.get("ran") is True

    def test_fig_alias_does_not_shadow_unknown(self):
        from repro.harness.cli import main

        with pytest.raises(SystemExit):
            main(["--quick", "fig99"])
