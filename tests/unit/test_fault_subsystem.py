"""Unit tests for the fault-tolerance building blocks.

Covers the write-ahead log (sequence-number monotonicity, live-base tracking,
truncation after checkpoints, durable round-trip), operator snapshot/restore
(Ship/MinShip buffers, Fixpoint, node-level checkpoints through the byte
form), and the simulator's crash/recover event model.
"""

import pytest

from repro.data.tuples import make_schema
from repro.data.update import Update, UpdateType, delete, insert
from repro.engine.runtime import PORT_BASE, PORT_EDGE, PORT_VIEW
from repro.engine.strategy import ExecutionStrategy
from repro.fault import (
    CheckpointStore,
    NodeSnapshot,
    UpdateLog,
    WALError,
    capture_node_state,
    fault_tolerant_executor,
    restore_node_state,
)
from repro.net.simulator import SimulatedNetwork, SimulationError
from repro.operators.ship import MinShipOperator, ShipMode, ShipOperator
from repro.provenance.absorption import AbsorptionProvenanceStore
from repro.queries.reachability import link, reachability_plan

EDGE = make_schema("link", ["src", "dst"])


def _updates(*pairs):
    return [insert(EDGE.tuple(src, dst)) for src, dst in pairs]


# -- write-ahead log -----------------------------------------------------------------


class TestUpdateLog:
    def test_sequence_numbers_are_monotone_per_node(self):
        wal = UpdateLog()
        sequences = [wal.append(0, PORT_BASE, _updates(("a", "b")), t) for t in range(5)]
        assert sequences == [1, 2, 3, 4, 5]
        # Another node's log starts its own sequence.
        assert wal.append(1, PORT_BASE, _updates(("a", "b")), 0.0) == 1
        assert wal.last_sequence(0) == 5
        assert wal.last_sequence(1) == 1

    def test_replay_returns_suffix_after_sequence(self):
        wal = UpdateLog()
        for index in range(4):
            wal.append(0, PORT_VIEW, _updates(("a", f"n{index}")), float(index))
        suffix = wal.replay(0, after_sequence=2)
        assert [entry.sequence for entry in suffix] == [3, 4]

    def test_truncation_after_checkpoint_drops_covered_prefix(self):
        wal = UpdateLog()
        for index in range(6):
            wal.append(0, PORT_VIEW, _updates(("a", f"n{index}")), float(index))
        dropped = wal.truncate(0, upto_sequence=4)
        assert dropped == 4
        assert [entry.sequence for entry in wal.entries(0)] == [5, 6]
        # Sequences stay monotone across truncation.
        assert wal.append(0, PORT_VIEW, _updates(("x", "y")), 9.0) == 7

    def test_truncation_past_last_sequence_is_refused(self):
        wal = UpdateLog()
        wal.append(0, PORT_BASE, _updates(("a", "b")), 0.0)
        with pytest.raises(WALError):
            wal.truncate(0, upto_sequence=5)

    def test_live_base_state_tracks_inserts_deletes_and_versions(self):
        wal = UpdateLog()
        ab, bc = EDGE.tuple("a", "b"), EDGE.tuple("b", "c")
        wal.append(0, PORT_BASE, [insert(ab), insert(bc)], 0.0)
        wal.append(0, PORT_BASE, [delete(ab)], 1.0)
        live, seeds, versions = wal.live_base_state(0)
        assert live == [bc]
        assert seeds == []
        assert versions[ab.key] == 1  # one retired incarnation
        # Re-insert: live again, next deletion bumps to version 2.
        wal.append(0, PORT_BASE, [insert(ab)], 2.0)
        live, _, versions = wal.live_base_state(0)
        assert set(live) == {ab, bc}
        assert versions[ab.key] == 1

    def test_live_base_survives_truncation(self):
        wal = UpdateLog()
        wal.append(0, PORT_BASE, _updates(("a", "b")), 0.0)
        wal.truncate(0, upto_sequence=1)
        live, _, _ = wal.live_base_state(0)
        assert live == [EDGE.tuple("a", "b")]

    def test_non_base_ports_do_not_touch_live_state(self):
        wal = UpdateLog()
        wal.append(0, PORT_EDGE, _updates(("a", "b")), 0.0)
        wal.append(0, PORT_VIEW, _updates(("a", "c")), 0.0)
        live, seeds, versions = wal.live_base_state(0)
        assert live == [] and seeds == [] and versions == {}

    def test_durable_round_trip_through_codec(self):
        store = AbsorptionProvenanceStore()
        wal = UpdateLog()
        annotation = store.base_annotation("p1") | store.base_annotation("p2")
        wal.append(0, PORT_VIEW, [insert(EDGE.tuple("a", "b"), provenance=annotation)], 0.0)
        data = wal.serialize_node(0, store)
        entries = wal.deserialize_node(0, data, store)
        assert len(entries) == 1
        restored = entries[0].updates[0]
        assert restored.tuple == EDGE.tuple("a", "b")
        assert restored.provenance == annotation  # same manager -> same node


# -- operator snapshot / restore ------------------------------------------------------


class TestShipSnapshot:
    def _minship(self, store, mode=ShipMode.LAZY):
        return MinShipOperator("minship", store, mode=mode, batch_size=50)

    def test_minship_buffers_survive_snapshot_restore(self):
        store = AbsorptionProvenanceStore()
        p1, p2 = store.base_annotation("p1"), store.base_annotation("p2")
        original = self._minship(store)
        tuple_ = EDGE.tuple("a", "b")
        original.process(insert(tuple_, provenance=p1))      # shipped immediately
        original.process(insert(tuple_, provenance=p2))      # buffered (lazy)
        assert original.pending_insertions

        state = original.export_state(store.encode_annotation)
        clone = self._minship(store)
        clone.import_state(state, store.decode_annotation)
        assert clone.sent == original.sent
        assert clone.pending_insertions == original.pending_insertions
        assert clone.pending_deletions == original.pending_deletions

        # Behavioural equivalence: the purge path releases the same buffered
        # alternative from the restored buffers as it would from the originals.
        released_original = original.purge_base([("p1")])
        released_clone = clone.purge_base([("p1")])
        assert [u.tuple for u in released_original] == [u.tuple for u in released_clone]

    def test_minship_snapshot_round_trips_through_fresh_manager(self):
        """The encoded buffers are manager-independent (a true cold restart)."""
        store = AbsorptionProvenanceStore()
        original = self._minship(store)
        tuple_ = EDGE.tuple("a", "b")
        original.process(insert(tuple_, provenance=store.base_annotation("p1")))
        original.process(insert(tuple_, provenance=store.base_annotation("p2")))
        state = original.export_state(store.encode_annotation)

        fresh_store = AbsorptionProvenanceStore()  # brand-new BDD manager
        clone = MinShipOperator("minship", fresh_store, mode=ShipMode.LAZY, batch_size=50)
        clone.import_state(state, fresh_store.decode_annotation)
        expected = fresh_store.base_annotation("p1") | fresh_store.base_annotation("p2")
        assert clone.pending_insertions[tuple_] == fresh_store.base_annotation("p2")
        assert (clone.sent[tuple_] | clone.pending_insertions[tuple_]) == expected

    def test_plain_ship_snapshot_is_empty_and_restorable(self):
        store = AbsorptionProvenanceStore()
        ship = ShipOperator("ship", store)
        state = ship.export_state(store.encode_annotation)
        assert state == {}
        ship.import_state(state, store.decode_annotation)  # must not raise


class TestNodeCheckpoint:
    def _executor(self):
        return fault_tolerant_executor(
            reachability_plan(),
            ExecutionStrategy.absorption_lazy(),
            node_count=3,
            checkpoint_interval=0,
        )

    def test_node_state_round_trips_through_bytes(self):
        executor = self._executor()
        executor.insert_edges([link("a", "b"), link("b", "c"), link("c", "a")])
        node = executor.nodes[1]
        snapshot = capture_node_state(node, wal_sequence=7)
        decoded = NodeSnapshot.from_bytes(snapshot.to_bytes())
        assert decoded.wal_sequence == 7

        fresh = executor.rebuild_node(1)
        assert fresh.view_tuples() == []
        restore_node_state(fresh, decoded)
        assert set(fresh.view_tuples()) == set(node.view_tuples())
        for tuple_ in node.fixpoint.view_tuples():
            assert fresh.fixpoint.annotation_of(tuple_) == node.fixpoint.annotation_of(tuple_)
        assert fresh.state_bytes() == node.state_bytes()

    def test_snapshot_refuses_foreign_node(self):
        executor = self._executor()
        snapshot = capture_node_state(executor.nodes[0], wal_sequence=0)
        with pytest.raises(ValueError):
            executor.nodes[1].restore_state(snapshot.state)

    def test_checkpoint_store_keeps_latest_per_node(self):
        store = CheckpointStore()
        executor = self._executor()
        node = executor.nodes[0]
        store.save(capture_node_state(node, wal_sequence=3))
        store.save(capture_node_state(node, wal_sequence=9))
        assert store.latest_sequence(0) == 9
        assert store.latest(1) is None
        assert store.checkpoints_taken == 2
        assert store.total_bytes() > 0


# -- simulator crash/recover ----------------------------------------------------------


class TestSimulatorFaults:
    def _network(self):
        network = SimulatedNetwork(node_count=2)
        deliveries = []
        network.register(0, lambda port, updates, now: deliveries.append((0, port)))
        network.register(1, lambda port, updates, now: deliveries.append((1, port)))
        return network, deliveries

    def test_messages_to_down_node_are_held_and_redelivered(self):
        network, deliveries = self._network()
        network.crash(1, at_time=0.0)
        network.send(0, 1, PORT_VIEW, _updates(("a", "b")), size_bytes=10, at_time=0.001)
        network.recover(1, at_time=1.0)
        network.run()
        assert deliveries == [(1, PORT_VIEW)]
        assert not network.is_down(1)
        assert network.held_messages(1) == 0

    def test_crash_without_recovery_holds_messages(self):
        network, deliveries = self._network()
        network.crash(1, at_time=0.0)
        network.send(0, 1, PORT_VIEW, _updates(("a", "b")), size_bytes=10, at_time=0.001)
        network.run()
        assert deliveries == []
        assert network.is_down(1)
        assert network.held_messages(1) == 1

    def test_double_crash_is_an_error(self):
        network, _ = self._network()
        network.crash(1, at_time=0.0)
        network.crash(1, at_time=1.0)
        with pytest.raises(SimulationError):
            network.run()

    def test_recover_of_live_node_is_an_error(self):
        network, _ = self._network()
        network.recover(1, at_time=0.0)
        with pytest.raises(SimulationError):
            network.run()

    def test_down_node_cannot_send(self):
        network, _ = self._network()
        network.crash(0, at_time=0.0)
        network.run()
        with pytest.raises(SimulationError):
            network.send(0, 1, PORT_VIEW, _updates(("a", "b")), size_bytes=10)
