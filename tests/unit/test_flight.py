"""Unit tests for the flight recorder: rings, dumps, and the failure hooks."""

import pytest

from repro.engine.strategy import ExecutionStrategy
from repro.net.simulator import SimulationBudgetExceeded
from repro.obs.export import (
    load_trace_events,
    validate_chrome_trace,
    validate_span_nesting,
    validate_track_monotonicity,
)
from repro.obs.flight import DEFAULT_RING_CAPACITY, FlightRecorder, maybe_dump_flight
from repro.obs.trace import Tracer, install_tracer
from repro.queries import build_executor, reachability_plan
from repro.workloads import TransitStubConfig, generate_topology


@pytest.fixture
def recorder():
    rec = FlightRecorder()
    install_tracer(rec)
    yield rec
    install_tracer(None)


class TestRing:
    def test_ring_bounds_retention(self):
        rec = FlightRecorder(capacity=8)
        for i in range(50):
            rec.instant(0, f"i{i}", "test")
        assert rec.retained_records() == 8
        assert rec.evicted_records() == 42
        names = [e["name"] for e in rec.snapshot_events()]
        assert names == [f"i{i}" for i in range(42, 50)]  # oldest-first tail

    def test_rings_are_per_pid(self):
        rec = FlightRecorder(capacity=4)
        for pid in (0, 1, 2):
            for i in range(10):
                rec.instant(pid, f"p{pid}-{i}", "test")
        assert rec.retained_records() == 12
        assert rec.evicted_records() == 18

    def test_spans_enter_ring_closed(self):
        rec = FlightRecorder(capacity=4)
        span = rec.begin(0, "work", "operator", sim_ts=1.0)
        assert rec.retained_records() == 0 and rec.open_span_count() == 1
        rec.end(span)
        assert rec.retained_records() == 1 and rec.open_span_count() == 0
        events = rec.snapshot_events()
        assert events[0]["ph"] == "X" and events[0]["dur"] >= 0
        assert events[0]["args"] == {"sim": 1.0}

    def test_snapshot_synthesises_open_spans_without_popping(self):
        rec = FlightRecorder()
        rec.begin(3, "interrupted", "phase")
        events = rec.snapshot_events()
        assert [e["name"] for e in events] == ["interrupted"]
        assert rec.open_span_count() == 1  # snapshot did not disturb recording

    def test_flow_and_kernel_surface(self):
        rec = FlightRecorder()
        flow = rec.flow_start(0, sim_ts=0.5)
        rec.flow_finish(flow, 1)
        rec.flow_finish(None, 1)  # ignored, like the tracer
        rec.kernel_slice(2, 0.001)
        rec.kernel_slice(2, 0.0)  # skipped
        phases = sorted(e["ph"] for e in rec.snapshot_events())
        assert phases == ["X", "f", "s"]

    def test_node_context_matches_tracer_contract(self):
        rec = FlightRecorder()
        assert rec.context_pid(9) == 9
        rec.set_node_context(4)
        assert rec.context_pid(9) == 4
        rec.clear_node_context()
        assert rec.context_pid(9) == 9


class TestDump:
    def test_dump_is_a_valid_chrome_trace(self, tmp_path, recorder):
        executor = build_executor(
            reachability_plan(), ExecutionStrategy.absorption_lazy(), node_count=4
        )
        topology = generate_topology(
            TransitStubConfig(nodes_per_stub=2, stubs_per_transit=2, dense=True, seed=5)
        )
        executor.insert_edges(topology.link_tuples())
        path = recorder.dump(tmp_path / "dump.json", reason="test")
        summary = validate_chrome_trace(path)
        assert summary["spans"] > 0 and summary["node_pids"]
        events = load_trace_events(path)
        assert validate_span_nesting(events) == []
        assert validate_track_monotonicity(events) == []
        dump_marks = [e for e in events if e.get("name") == "flight-dump"]
        assert len(dump_marks) == 1
        assert dump_marks[0]["args"]["reason"] == "test"
        assert dump_marks[0]["args"]["ring_capacity"] == DEFAULT_RING_CAPACITY

    def test_dump_jsonl(self, tmp_path):
        rec = FlightRecorder()
        rec.end(rec.begin(0, "x", "net"))
        path = rec.dump(tmp_path / "dump.jsonl", reason="jsonl")
        events = load_trace_events(path)
        assert any(e.get("ph") == "X" for e in events)

    def test_maybe_dump_requires_recorder_and_path(self, tmp_path):
        install_tracer(None)
        assert maybe_dump_flight("no recorder") is None
        tracer = Tracer()
        install_tracer(tracer)
        try:
            assert maybe_dump_flight("full tracer, not a recorder") is None
        finally:
            install_tracer(None)
        rec = FlightRecorder()  # no dump_path
        install_tracer(rec)
        try:
            assert maybe_dump_flight("nowhere to dump") is None
            explicit = tmp_path / "explicit.json"
            assert maybe_dump_flight("explicit path", path=explicit) == str(explicit)
        finally:
            install_tracer(None)


class TestFailureHooks:
    def test_budget_overrun_dumps_via_executor(self, tmp_path):
        dump = tmp_path / "overrun.json"
        rec = FlightRecorder(dump_path=dump)
        install_tracer(rec)
        try:
            executor = build_executor(
                reachability_plan(),
                ExecutionStrategy.absorption_lazy(),
                node_count=4,
                max_events=50,
            )
            topology = generate_topology(
                TransitStubConfig(nodes_per_stub=2, stubs_per_transit=2, dense=True, seed=5)
            )
            with pytest.raises(SimulationBudgetExceeded):
                executor.insert_edges(topology.link_tuples())
        finally:
            install_tracer(None)
        assert dump.exists()
        events = load_trace_events(dump)
        marks = [e for e in events if e.get("name") == "flight-dump"]
        assert len(marks) == 1 and "SimulationBudgetExceeded" in marks[0]["args"]["reason"]

    def test_successful_run_never_dumps(self, tmp_path):
        dump = tmp_path / "never.json"
        rec = FlightRecorder(dump_path=dump)
        install_tracer(rec)
        try:
            executor = build_executor(
                reachability_plan(), ExecutionStrategy.absorption_lazy(), node_count=4
            )
            plan = executor.plan
            executor.insert_edges(
                [plan.edge_schema.tuple("a", "b"), plan.edge_schema.tuple("b", "c")]
            )
        finally:
            install_tracer(None)
        assert not dump.exists()
        assert rec.retained_records() > 0  # it did record, it just had no reason to dump
