"""Unit tests for the provenance stores (absorption, relative, counting, null)."""

import pytest

from repro.provenance import (
    AbsorptionProvenanceStore,
    CountingProvenanceStore,
    RelativeProvenanceStore,
    provenance_store_for,
)
from repro.provenance.relative import Derivation
from repro.provenance.semiring import (
    BooleanSemiring,
    CountingSemiring,
    LineageSemiring,
    TropicalSemiring,
    WhySemiring,
    posbool_of_why,
)
from repro.provenance.tracker import NullProvenanceStore


class TestFactory:
    @pytest.mark.parametrize(
        "kind, cls",
        [
            ("absorption", AbsorptionProvenanceStore),
            ("relative", RelativeProvenanceStore),
            ("counting", CountingProvenanceStore),
            ("none", NullProvenanceStore),
            ("dred", NullProvenanceStore),
        ],
    )
    def test_known_kinds(self, kind, cls):
        assert isinstance(provenance_store_for(kind), cls)

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError):
            provenance_store_for("quantum")


class TestAbsorptionStore:
    @pytest.fixture()
    def store(self):
        return AbsorptionProvenanceStore()

    def test_base_annotation_satisfiable(self, store):
        pv = store.base_annotation("p1")
        assert not store.is_zero(pv)

    def test_join_then_delete_base(self, store):
        p1 = store.base_annotation("p1")
        p2 = store.base_annotation("p2")
        joined = store.conjoin(p1, p2)
        assert store.is_zero(store.remove_base(joined, ["p1"]))

    def test_alternative_derivation_survives_deletion(self, store):
        """Figure 2 deletion scenario: p4 | (p1 & p3) survives deleting p4."""
        pv = store.annotation_from_products([["p4"], ["p1", "p3"]])
        after = store.remove_base(pv, ["p4"])
        assert not store.is_zero(after)
        assert store.equals(after, store.annotation_from_products([["p1", "p3"]]))

    def test_absorption_collapses_redundant_derivation(self, store):
        redundant = store.annotation_from_products([["p1", "p2"], ["p1", "p2", "p3"]])
        minimal = store.annotation_from_products([["p1", "p2"]])
        assert store.equals(redundant, minimal)

    def test_difference_is_new_and_not_old(self, store):
        old = store.annotation_from_products([["p1"]])
        new = store.annotation_from_products([["p1"], ["p2"]])
        delta = store.difference(new, old)
        assert not store.is_zero(delta)
        assert store.is_zero(store.conjoin(delta, old))

    def test_size_bytes_grows_with_complexity(self, store):
        simple = store.base_annotation("p1")
        complex_ = store.annotation_from_products([["p1", "p2"], ["p3", "p4"], ["p5", "p6"]])
        assert store.size_bytes(complex_) > store.size_bytes(simple)

    def test_depends_on(self, store):
        pv = store.annotation_from_products([["p1", "p2"]])
        assert store.depends_on(pv, "p1")
        assert not store.depends_on(pv, "p9")

    def test_describe(self, store):
        assert store.describe(store.zero()) == "false"
        assert store.describe(store.one()) == "true"
        text = store.describe(store.annotation_from_products([["p1", "p2"]]))
        assert "p1" in text and "p2" in text

    def test_supports_deletion_flag(self, store):
        assert store.supports_deletion
        assert store.name == "absorption"


class TestRelativeStore:
    @pytest.fixture()
    def store(self):
        return RelativeProvenanceStore()

    def test_base_annotation(self, store):
        pv = store.base_annotation("p1")
        assert not store.is_zero(pv)
        assert len(pv) == 1

    def test_no_absorption_keeps_redundant_derivations(self, store):
        p1 = store.base_annotation("p1")
        p2 = store.base_annotation("p2")
        direct = p1
        indirect = store.conjoin(p1, p2)
        merged = store.disjoin(direct, indirect)
        # Unlike absorption provenance, both derivations are kept.
        assert len(merged) == 2

    def test_relative_larger_than_absorption_for_redundant_derivations(self, store):
        absorption = AbsorptionProvenanceStore()
        redundant_rel = store.disjoin(
            store.base_annotation("p1"),
            store.conjoin(store.base_annotation("p1"), store.base_annotation("p2")),
        )
        redundant_abs = absorption.disjoin(
            absorption.base_annotation("p1"),
            absorption.conjoin(
                absorption.base_annotation("p1"), absorption.base_annotation("p2")
            ),
        )
        assert store.size_bytes(redundant_rel) > absorption.size_bytes(redundant_abs)

    def test_remove_base(self, store):
        pv = store.disjoin(
            store.base_annotation("p4"),
            store.conjoin(store.base_annotation("p1"), store.base_annotation("p3")),
        )
        after = store.remove_base(pv, ["p4"])
        assert not store.is_zero(after)
        assert store.is_zero(store.remove_base(after, ["p1"]))

    def test_derivation_cap(self):
        store = RelativeProvenanceStore(max_derivations_per_tuple=3)
        annotation = store.zero()
        for i in range(10):
            annotation = store.disjoin(annotation, store.base_annotation(f"p{i}"))
        assert len(annotation) <= 3

    def test_derivation_graph_traversal(self, store):
        store.record_edge("d1", ["b1", "b2"])
        store.record_edge("d2", ["d1", "b3"])
        assert store.derivable("d2", {"b1", "b2", "b3"})
        assert not store.derivable("d2", {"b1", "b3"})
        assert store.edge_count == 2

    def test_derivation_graph_cycles_do_not_ground(self, store):
        store.record_edge("x", ["y"])
        store.record_edge("y", ["x"])
        assert not store.derivable("x", set())
        assert store.derivable("x", {"y"})

    def test_describe(self, store):
        assert store.describe(store.zero()) == "underivable"
        assert "p1" in store.describe(store.base_annotation("p1"))

    def test_derivation_uses(self):
        derivation = Derivation(leaves=frozenset({"a", "b"}))
        assert derivation.uses({"a"})
        assert not derivation.uses({"c"})


class TestCountingStore:
    @pytest.fixture()
    def store(self):
        return CountingProvenanceStore()

    def test_counts_multiply_on_join(self, store):
        assert store.conjoin(2, 3) == 6

    def test_counts_add_on_union(self, store):
        assert store.disjoin(2, 3) == 5

    def test_zero_detection(self, store):
        assert store.is_zero(0)
        assert not store.is_zero(1)

    def test_size_constant(self, store):
        assert store.size_bytes(1) == store.size_bytes(1000)

    def test_describe(self, store):
        assert "2" in store.describe(2)


class TestNullStore:
    @pytest.fixture()
    def store(self):
        return NullProvenanceStore()

    def test_no_deletion_support(self, store):
        assert not store.supports_deletion

    def test_algebra_is_boolean(self, store):
        assert store.conjoin(store.one(), store.one())
        assert not store.conjoin(store.one(), store.zero())
        assert store.disjoin(store.zero(), store.one())

    def test_size_zero(self, store):
        assert store.size_bytes(store.one()) == 0

    def test_describe(self, store):
        assert store.describe(store.one()) == "present"
        assert store.describe(store.zero()) == "absent"


class TestSemirings:
    def test_posbool_laws(self):
        a = BooleanSemiring.of_base("a")
        b = BooleanSemiring.of_base("b")
        assert BooleanSemiring.plus(a, BooleanSemiring.zero) == a
        assert BooleanSemiring.times(a, BooleanSemiring.one) == a
        assert BooleanSemiring.plus(a, BooleanSemiring.times(a, b)) == a  # absorption

    def test_counting_semiring(self):
        assert CountingSemiring.plus(2, 3) == 5
        assert CountingSemiring.times(2, 3) == 6
        assert CountingSemiring.of_base("x") == 1

    def test_why_semiring(self):
        a = WhySemiring.of_base("a")
        b = WhySemiring.of_base("b")
        product = WhySemiring.times(a, b)
        assert frozenset({"a", "b"}) in product
        assert WhySemiring.plus(a, b) == a | b

    def test_lineage_semiring_flattens(self):
        a = LineageSemiring.of_base("a")
        b = LineageSemiring.of_base("b")
        assert LineageSemiring.times(a, b) == frozenset({"a", "b"})
        assert LineageSemiring.plus(a, b) == frozenset({"a", "b"})

    def test_tropical_semiring(self):
        assert TropicalSemiring.plus(3.0, 5.0) == 3.0
        assert TropicalSemiring.times(3.0, 5.0) == 8.0
        assert TropicalSemiring.is_zero(TropicalSemiring.zero)

    def test_fold_helpers(self):
        assert CountingSemiring.plus_all([1, 2, 3]) == 6
        assert CountingSemiring.times_all([2, 3, 4]) == 24
        assert CountingSemiring.plus_all([]) == 0
        assert CountingSemiring.times_all([]) == 1

    def test_posbool_of_why(self):
        why = WhySemiring.times(WhySemiring.of_base("a"), WhySemiring.of_base("b"))
        expr = posbool_of_why(why)
        assert expr.evaluate({"a": True, "b": True})
        assert not expr.evaluate({"a": True})
