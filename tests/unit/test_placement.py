"""Unit tests for the elastic placement subsystem and the hash partitioners."""

import pytest

from repro.data.relation import stable_hash
from repro.net.partition import HashPartitioner
from repro.placement import (
    ConsistentHashRing,
    LoadAwareRebalancer,
    PlacementError,
    PlacementMap,
    RingError,
)

KEYS = [f"key-{index}" for index in range(2000)]


class TestHashPartitionerInvariants:
    def test_stable_across_instances(self):
        first, second = HashPartitioner(8), HashPartitioner(8)
        assert [first(k) for k in KEYS] == [second(k) for k in KEYS]

    def test_stable_hash_is_process_independent(self):
        # FNV-1a over the repr: a fixed value pins the function forever.
        assert stable_hash("key-0") == stable_hash("key-0")
        assert stable_hash(("vnode", 1, 2)) != stable_hash(("vnode", 2, 1))

    def test_every_node_gets_a_fair_share(self):
        partitioner = HashPartitioner(8)
        counts = {node: 0 for node in range(8)}
        for key in KEYS:
            counts[partitioner(key)] += 1
        assert all(count > 0 for count in counts.values())
        mean = len(KEYS) / 8
        assert max(counts.values()) < 2 * mean
        assert min(counts.values()) > mean / 2

    def test_nodes_property_is_dense_range(self):
        assert HashPartitioner(4).nodes == (0, 1, 2, 3)

    def test_modulo_growth_remaps_most_keys(self):
        # The motivation for the ring: growing a modulo partitioner reshuffles
        # nearly everything.
        before = HashPartitioner(8)
        after = HashPartitioner(9)
        remapped = sum(1 for key in KEYS if before(key) != after(key))
        assert remapped > len(KEYS) / 2


class TestConsistentHashRing:
    def test_deterministic_and_in_membership(self):
        ring = ConsistentHashRing(range(6))
        again = ConsistentHashRing(range(6))
        for key in KEYS[:200]:
            assert ring.node_for(key) == again.node_for(key)
            assert ring.node_for(key) in ring.nodes

    def test_balance_with_default_virtual_nodes(self):
        ring = ConsistentHashRing(range(8))
        counts = {node: 0 for node in ring.nodes}
        for key in KEYS:
            counts[ring.node_for(key)] += 1
        assert all(count > 0 for count in counts.values())
        assert max(counts.values()) < 4 * (len(KEYS) / 8)

    def test_add_node_only_steals_keys(self):
        ring = ConsistentHashRing(range(5))
        before = {key: ring.node_for(key) for key in KEYS}
        ring.add_node(5)
        for key, owner in before.items():
            after = ring.node_for(key)
            # Consistency: a key either stays put or moves to the new node.
            assert after in (owner, 5)

    def test_remove_node_only_rehomes_its_keys(self):
        ring = ConsistentHashRing(range(5))
        before = {key: ring.node_for(key) for key in KEYS}
        ring.remove_node(3)
        for key, owner in before.items():
            if owner == 3:
                assert ring.node_for(key) != 3
            else:
                assert ring.node_for(key) == owner

    def test_remove_then_readd_restores_ownership(self):
        ring = ConsistentHashRing(range(5))
        before = {key: ring.node_for(key) for key in KEYS[:300]}
        ring.remove_node(2)
        ring.add_node(2)
        assert {key: ring.node_for(key) for key in KEYS[:300]} == before

    def test_weight_shifts_share(self):
        ring = ConsistentHashRing(range(4), virtual_nodes=64)

        def share(node):
            return sum(1 for key in KEYS if ring.node_for(key) == node)

        heavy = share(0)
        ring.set_weight(0, 16)
        assert share(0) < heavy

    def test_overrides_pin_keys(self):
        ring = ConsistentHashRing(range(3))
        ring.assign("pinned", 2)
        assert ring.node_for("pinned") == 2
        ring.remove_node(2)
        assert ring.node_for("pinned") != 2  # override dropped with the node

    def test_invalid_mutations(self):
        ring = ConsistentHashRing(range(2))
        with pytest.raises(RingError):
            ring.add_node(1)
        with pytest.raises(RingError):
            ring.add_node(5, weight=0)
        with pytest.raises(RingError):
            ring.remove_node(7)
        with pytest.raises(RingError):
            ring.set_weight(9, 3)
        with pytest.raises(RingError):
            ring.set_weight(0, 0)
        with pytest.raises(RingError):
            ConsistentHashRing(range(2), virtual_nodes=0)
        ring.remove_node(0)
        with pytest.raises(RingError):
            ring.remove_node(1)

    def test_empty_ring_rejects_lookup(self):
        with pytest.raises(RingError):
            ConsistentHashRing().node_for("anything")


class TestPlacementMap:
    def test_epoch_bumps_on_every_mutation(self):
        placement = PlacementMap(ConsistentHashRing(range(3)))
        assert placement.epoch == 0
        placement.add_node(3)
        assert placement.epoch == 1
        placement.remove_node(0)
        assert placement.epoch == 2
        placement.set_weights({1: 32, 2: 64})
        assert placement.epoch == 3
        assert placement.nodes == (1, 2, 3)

    def test_delegates_routing(self):
        ring = ConsistentHashRing(range(4))
        placement = PlacementMap(ring)
        for key in KEYS[:100]:
            assert placement.node_for(key) == ring.node_for(key)
            assert placement(key) == ring.node_for(key)
        assert placement.node_count == 4
        assert placement.elastic

    def test_misroute_counters(self):
        placement = PlacementMap(ConsistentHashRing(range(2)))
        placement.record_misroute(5)
        placement.record_misroute(1)
        stats = placement.stats()
        assert stats["misrouted_batches"] == 2
        assert stats["misrouted_updates"] == 6

    def test_ring_errors_surface_as_placement_errors(self):
        placement = PlacementMap(ConsistentHashRing(range(2)))
        with pytest.raises(PlacementError):
            placement.add_node(0)

    def test_frozen_partitioner_rejects_mutation(self):
        placement = PlacementMap(HashPartitioner(4))
        with pytest.raises(PlacementError):
            placement.add_node(4)
        with pytest.raises(PlacementError):
            placement.set_weights({0: 2})


class TestLoadAwareRebalancer:
    def test_balanced_cluster_proposes_nothing(self):
        rebalancer = LoadAwareRebalancer()
        weights = {0: 64, 1: 64, 2: 64}
        assert rebalancer.plan_weights(weights, 64, {0: 10.0, 1: 11.0, 2: 9.0}) is None

    def test_hot_node_sheds_weight(self):
        rebalancer = LoadAwareRebalancer()
        weights = {0: 64, 1: 64, 2: 64}
        proposal = rebalancer.plan_weights(weights, 64, {0: 100.0, 1: 10.0, 2: 10.0})
        assert proposal is not None
        assert proposal[0] < 64
        assert proposal[1] > proposal[0]

    def test_zero_load_or_single_node_is_a_noop(self):
        rebalancer = LoadAwareRebalancer()
        assert rebalancer.plan_weights({0: 64}, 64, {0: 99.0}) is None
        assert rebalancer.plan_weights({0: 64, 1: 64}, 64, {}) is None

    def test_invalid_thresholds_rejected(self):
        with pytest.raises(ValueError):
            LoadAwareRebalancer(imbalance_threshold=0.5)
        with pytest.raises(ValueError):
            LoadAwareRebalancer(min_weight_factor=0.0)
