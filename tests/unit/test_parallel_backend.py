"""Unit tests for the process backend's building blocks.

Everything here runs in this process — the cross-process pieces (envelope
codec, command WAL, metrics materialize/merge, trace absorption, the
backend's unsupported-feature guards) are exercised directly, without
spawning workers.  The end-to-end equivalence lives in
``tests/integration/test_process_backend.py`` and
``tests/property/test_parallel_equivalence.py``.
"""

import pickle

import pytest

from repro.fault.worker_wal import CommandLog, wal_tail_bytes
from repro.net.simulator import SimulatedNetwork, SimulationError
from repro.net.transport import Transport
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import CONTROL_PID, KERNEL_PID, Tracer
from repro.provenance import canonical_annotation
from repro.provenance.absorption import AbsorptionProvenanceStore
from repro.queries import build_executor, reachability_plan
from repro.queries.shortest_path import shortest_path_plan


# -- metrics: materialize / merge (satellite: snapshot-then-merge) -----------------


def _registry_with_everything() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("deliveries").inc(3)
    registry.histogram("delta").observe(4)
    registry.histogram("delta").observe(9)
    registry.gauge("depth", lambda: 7)
    registry.register_probe("kernel", lambda: {"table_size": 100, "gc_passes": 2})
    return registry


def test_materialize_snapshots_identically_and_pickles():
    registry = _registry_with_everything()
    frozen = registry.materialize()
    live, dead = registry.snapshot(), frozen.snapshot()
    live.pop("elapsed_s"), dead.pop("elapsed_s")
    assert live == dead
    # The frozen registry must cross a process boundary (gauges/probes are
    # process-local callables on the live one).
    revived = pickle.loads(pickle.dumps(frozen))
    snap = revived.snapshot()
    snap.pop("elapsed_s")
    assert snap == dead


def test_merge_sums_counters_histograms_and_frozen_values():
    merged = MetricsRegistry()
    merged.merge(_registry_with_everything().materialize())
    merged.merge(_registry_with_everything().materialize())
    snap = merged.snapshot()
    assert snap["deliveries"] == 6
    assert snap["delta_count"] == 4
    assert snap["delta_sum"] == 26
    assert snap["delta_max"] == 9
    assert snap["depth"] == 14
    assert snap["kernel.table_size"] == 200
    assert snap["kernel.gc_passes"] == 4


def test_merge_with_prefix_namespaces_every_key():
    merged = MetricsRegistry()
    merged.merge(_registry_with_everything().materialize(), prefix="w1")
    snap = merged.snapshot()
    assert snap["w1.deliveries"] == 3
    assert snap["w1.kernel.table_size"] == 100
    assert "deliveries" not in snap
    # Prefixed merges keep each worker's clock; only the unprefixed aggregate
    # folds elapsed_s (as a max — wall clocks overlap, they don't add).
    assert "w1.elapsed_s" in snap


def test_merge_elapsed_takes_max_not_sum():
    a, b = MetricsRegistry(), MetricsRegistry()
    a._frozen["elapsed_s"] = 2.0
    b._frozen["elapsed_s"] = 5.0
    merged = MetricsRegistry()
    merged.merge(a)
    merged.merge(b)
    assert merged.snapshot()["elapsed_s"] == 5.0


# -- trace absorption ---------------------------------------------------------------


def test_absorb_remaps_synthetic_pids_and_shifts_clock():
    coordinator, worker = Tracer(), Tracer()
    span = worker.begin(3, "deliver:edge", "net")
    worker.end(span)
    span = worker.begin(KERNEL_PID, "gc", "gc")
    worker.end(span)
    events, tracks = list(worker.events), sorted(worker._tracks)
    coordinator.absorb(events, tracks, worker._t0, pid_offset=8, label="worker 1, pid 42")
    pids = {event["pid"] for event in coordinator.events}
    assert 3 in pids  # node tracks are globally unique: pass through
    assert KERNEL_PID + 8 in pids  # synthetic tracks shift per worker
    assert KERNEL_PID not in pids
    labels = coordinator._process_labels
    assert labels[3] == "node 3 [worker 1, pid 42]"
    assert labels[KERNEL_PID + 8] == "bdd-kernel [worker 1, pid 42]"
    # Both tracers read CLOCK_MONOTONIC; after the origin shift every absorbed
    # timestamp must be non-negative on the coordinator clock.
    assert all(event["ts"] >= 0 for event in coordinator.events)


def test_absorbed_trace_exports_with_real_pid_labels():
    coordinator, worker = Tracer(), Tracer()
    span = worker.begin(CONTROL_PID, "flush", "net")
    worker.end(span)
    coordinator.absorb(
        list(worker.events), sorted(worker._tracks), worker._t0, 16, "worker 2, pid 99"
    )
    names = {
        event["args"]["name"]
        for event in coordinator.chrome_events()
        if event.get("name") == "process_name"
    }
    assert "cluster-control [worker 2, pid 99]" in names


# -- command WAL --------------------------------------------------------------------


def test_command_log_round_trips_commands(tmp_path):
    path = tmp_path / "worker0.cmdlog"
    log = CommandLog(path)
    commands = [("deliver", 1, 3, "edge", [], 0.5), ("flush", 2, 0.75)]
    for command in commands:
        log.append(command)
    log.close()
    assert list(CommandLog.replay(path)) == commands
    assert log.appended == 2


def test_command_log_replay_stops_at_torn_tail(tmp_path):
    path = tmp_path / "worker0.cmdlog"
    log = CommandLog(path)
    log.append(("deliver", 1, 0, "edge", [], 0.0))
    log.append(("deliver", 2, 1, "edge", [], 0.1))
    log.close()
    # Simulate a crash mid-append: chop the last record in half.
    data = path.read_bytes()
    path.write_bytes(data[: len(data) - 7])
    replayed = list(CommandLog.replay(path))
    assert replayed == [("deliver", 1, 0, "edge", [], 0.0)]
    assert wal_tail_bytes(path) > 0


# -- canonical annotations ----------------------------------------------------------


def test_canonical_annotation_is_variable_order_independent():
    # Same monotone function built under two different variable orders: the
    # raw path products differ, the canonical antichain must not.
    def build(order):
        store = AbsorptionProvenanceStore()
        for key in order:
            store.manager.variable(key)
        a, b, c = (store.manager.variable(k) for k in ("a", "b", "c"))
        return store, a | (a & b) | (b & c)

    store1, f1 = build(["a", "b", "c"])
    store2, f2 = build(["c", "b", "a"])
    c1 = canonical_annotation(store1, f1)
    c2 = canonical_annotation(store2, f2)
    assert c1 == c2
    # Absorption: a & b is subsumed by a, so the antichain is {a}, {b, c}.
    assert c1 == frozenset({frozenset({"a"}), frozenset({"b", "c"})})


def test_canonical_annotation_passthrough():
    store = AbsorptionProvenanceStore()
    assert canonical_annotation(store, None) is None


# -- transport protocol -------------------------------------------------------------


def test_simulated_network_satisfies_transport_protocol():
    network = SimulatedNetwork(node_count=2)
    assert isinstance(network, Transport)


# -- backend guards -----------------------------------------------------------------


def test_unpicklable_plan_is_rejected_eagerly():
    with pytest.raises(SimulationError, match="cannot cross a process boundary"):
        build_executor(shortest_path_plan(), "DRed", node_count=4, backend="process", workers=1)


def test_unknown_backend_is_rejected():
    with pytest.raises(ValueError, match="unknown backend"):
        build_executor(reachability_plan(), "DRed", node_count=4, backend="threads")
