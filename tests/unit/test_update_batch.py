"""Unit tests for the UpdateBatch delta abstraction and BatchPolicy knobs."""

import pytest

from repro.data.batch import BatchPolicy, UpdateBatch, group_by_tuple, split_runs
from repro.data.tuples import make_schema
from repro.data.update import delete, insert
from repro.provenance import AbsorptionProvenanceStore

schema = make_schema("link", ["src", "dst"])


def t(src, dst):
    return schema.tuple(src, dst)


class TestSplitRuns:
    def test_preserves_type_run_boundaries(self):
        updates = [insert(t("a", "b")), insert(t("b", "c")), delete(t("a", "b")), insert(t("c", "d"))]
        runs = split_runs(updates)
        assert [(is_ins, len(run)) for is_ins, run in runs] == [(True, 2), (False, 1), (True, 1)]

    def test_empty(self):
        assert split_runs([]) == []


class TestGroupByTuple:
    def test_groups_preserve_first_seen_order(self):
        updates = [insert(t("a", "b")), insert(t("b", "c")), insert(t("a", "b"))]
        groups = group_by_tuple(updates)
        assert list(groups) == [t("a", "b"), t("b", "c")]
        assert len(groups[t("a", "b")]) == 2


class TestUpdateBatch:
    def test_sequence_protocol(self):
        batch = UpdateBatch([insert(t("a", "b")), delete(t("a", "b"))])
        assert len(batch) == 2
        assert batch[0].is_insert and batch[1].is_delete
        assert batch.insert_count == 1 and batch.delete_count == 1
        assert isinstance(batch[0:1], UpdateBatch)

    def test_chunks(self):
        batch = UpdateBatch([insert(t("a", str(i))) for i in range(5)])
        chunks = list(batch.chunks(2))
        assert [len(c) for c in chunks] == [2, 2, 1]
        with pytest.raises(ValueError):
            list(batch.chunks(0))

    def test_coalesced_merges_same_tuple_annotations(self):
        store = AbsorptionProvenanceStore()
        p1, p2 = store.base_annotation("p1"), store.base_annotation("p2")
        batch = UpdateBatch(
            [insert(t("a", "b"), provenance=p1), insert(t("a", "b"), provenance=p2)]
        )
        merged = batch.coalesced(store)
        assert len(merged) == 1
        assert store.equals(merged[0].provenance, store.disjoin(p1, p2))

    def test_coalesced_keeps_ins_del_boundary(self):
        batch = UpdateBatch(
            [insert(t("a", "b")), delete(t("a", "b")), insert(t("a", "b"))]
        )
        merged = batch.coalesced(AbsorptionProvenanceStore())
        assert [u.is_insert for u in merged] == [True, False, True]


class TestBatchPolicy:
    def test_default_batches_all_ports(self):
        policy = BatchPolicy()
        assert policy.batches_port("view") and policy.batches_port("purge")
        assert policy.injection_chunk("base") == policy.max_batch

    def test_port_restriction(self):
        policy = BatchPolicy(max_batch=8, ports=frozenset({"view"}))
        assert policy.batches_port("view")
        assert not policy.batches_port("edge")
        assert policy.injection_chunk("edge") == 1

    def test_tuple_at_a_time_is_degenerate(self):
        policy = BatchPolicy.tuple_at_a_time()
        assert policy.max_batch == 1
        assert not policy.batches_port("view")
        assert policy.label == "tuple-at-a-time"

    def test_chunking(self):
        policy = BatchPolicy(max_batch=3)
        updates = [insert(t("a", str(i))) for i in range(7)]
        chunks = list(policy.chunk(updates, "base"))
        assert [len(c) for c in chunks] == [3, 3, 1]

    def test_invalid_max_batch_rejected(self):
        with pytest.raises(ValueError):
            BatchPolicy(max_batch=0)
