"""Unit tests for the simulated network, latency models, partitioning and stats."""

import pytest

from repro.data.tuples import make_schema
from repro.data.update import insert
from repro.net import (
    ClusterLatencyModel,
    HashPartitioner,
    Message,
    NetworkStats,
    SimulatedNetwork,
    UniformLatencyModel,
)
from repro.net.simulator import SimulationBudgetExceeded, SimulationError

SCHEMA = make_schema("link", ["src", "dst"])


def _update(src="A", dst="B"):
    return insert(SCHEMA.tuple(src, dst))


class TestLatencyModels:
    def test_uniform(self):
        model = UniformLatencyModel(delay=0.005)
        assert model(0, 0) == 0.0
        assert model(0, 1) == 0.005

    def test_cluster_model(self):
        model = ClusterLatencyModel(primary_cluster_size=4, intra_cluster_delay=0.001,
                                    inter_cluster_delay=0.02)
        assert model(0, 3) == 0.001
        assert model(4, 5) == 0.001
        assert model(0, 4) == 0.02
        assert model(5, 1) == 0.02
        assert model(2, 2) == 0.0


class TestHashPartitioner:
    def test_deterministic(self):
        partitioner = HashPartitioner(8)
        assert partitioner("x") == partitioner("x")
        assert 0 <= partitioner("x") < 8

    def test_overrides(self):
        partitioner = HashPartitioner.identity(3, {"A": 0, "B": 1})
        assert partitioner("A") == 0 and partitioner("B") == 1
        partitioner.assign("C", 2)
        assert partitioner("C") == 2
        with pytest.raises(ValueError):
            partitioner.assign("D", 9)

    def test_invalid_node_count(self):
        with pytest.raises(ValueError):
            HashPartitioner(0)


class TestNetworkStats:
    def test_records_remote_messages_only(self):
        stats = NetworkStats(node_count=2)
        remote = Message(src=0, dst=1, port="view", updates=(_update(),), size_bytes=100, sent_at=0.0)
        local = Message(src=1, dst=1, port="view", updates=(_update(),), size_bytes=50, sent_at=0.0)
        stats.record_message(remote)
        stats.record_message(local)
        assert stats.total_messages == 1
        assert stats.total_bytes == 100
        assert stats.local_messages == 1
        assert stats.local_bytes == 50

    def test_provenance_average(self):
        stats = NetworkStats()
        stats.record_provenance(100, 1)
        stats.record_provenance(300, 1)
        assert stats.per_tuple_provenance_bytes == 200

    def test_merge(self):
        first, second = NetworkStats(node_count=2), NetworkStats(node_count=2)
        first.record_message(Message(0, 1, "p", (_update(),), 10, 0.0))
        second.record_message(Message(1, 0, "p", (_update(),), 20, 0.0))
        second.record_time(5.0)
        merged = first.merge(second)
        assert merged.total_bytes == 30
        assert merged.convergence_time == 5.0

    def test_summary_keys(self):
        summary = NetworkStats(node_count=4).summary()
        assert {"communication_mb", "messages", "convergence_time_s"} <= set(summary)


class TestSimulatedNetwork:
    def test_message_delivery_and_clock(self):
        network = SimulatedNetwork(node_count=2, latency_model=UniformLatencyModel(0.01),
                                   processing_cost=0.001)
        received = []
        network.register(0, lambda port, updates, now: received.append((port, len(updates), now)))
        network.register(1, lambda port, updates, now: None)
        network.inject(0, "view", [_update()], at_time=0.0)
        stats = network.run()
        assert received and received[0][0] == "view"
        assert stats.convergence_time >= 0.001

    def test_fifo_ordering_per_pair(self):
        network = SimulatedNetwork(node_count=2, latency_model=UniformLatencyModel(0.01))
        order = []
        network.register(1, lambda port, updates, now: order.append(port))
        network.register(0, lambda port, updates, now: None)
        network.send(0, 1, "first", [_update()], 10, at_time=0.0)
        network.send(0, 1, "second", [_update()], 10, at_time=0.0)
        network.run()
        assert order == ["first", "second"]

    def test_handler_can_send_more_messages(self):
        network = SimulatedNetwork(node_count=2)

        def forward(port, updates, now):
            if port == "start":
                network.send(0, 1, "hop", list(updates), 10, at_time=now)

        seen = []
        network.register(0, forward)
        network.register(1, lambda port, updates, now: seen.append(port))
        network.inject(0, "start", [_update()], at_time=0.0)
        network.run()
        assert seen == ["hop"]
        assert network.stats.total_messages == 1

    def test_missing_handler_raises(self):
        network = SimulatedNetwork(node_count=2)
        network.inject(1, "view", [_update()])
        with pytest.raises(SimulationError):
            network.run()

    def test_empty_send_rejected(self):
        network = SimulatedNetwork(node_count=2)
        with pytest.raises(SimulationError):
            network.send(0, 1, "view", [], 0)

    def test_unknown_node_rejected(self):
        network = SimulatedNetwork(node_count=2)
        with pytest.raises(SimulationError):
            network.send(0, 5, "view", [_update()], 10)

    def test_event_budget(self):
        network = SimulatedNetwork(node_count=2, max_events=3)

        def ping_pong(port, updates, now):
            destination = 1 if port == "to1" else 0
            network.send(destination ^ 1, destination, f"to{destination}", list(updates), 1, at_time=now)

        network.register(0, lambda port, updates, now: network.send(0, 1, "to1", list(updates), 1, at_time=now))
        network.register(1, lambda port, updates, now: network.send(1, 0, "to0", list(updates), 1, at_time=now))
        network.inject(0, "start", [_update()], at_time=0.0)
        with pytest.raises(SimulationBudgetExceeded):
            network.run()

    def test_reset_stats(self):
        network = SimulatedNetwork(node_count=2)
        network.register(1, lambda port, updates, now: None)
        network.register(0, lambda port, updates, now: None)
        network.send(0, 1, "view", [_update()], 10)
        network.run()
        assert network.stats.total_messages == 1
        network.reset_stats()
        assert network.stats.total_messages == 0

    def test_run_until_time_limit(self):
        network = SimulatedNetwork(node_count=2, latency_model=UniformLatencyModel(1.0))
        network.register(1, lambda port, updates, now: None)
        network.register(0, lambda port, updates, now: None)
        network.send(0, 1, "view", [_update()], 10, at_time=0.0)
        network.run(until=0.5)
        assert network.pending_events() == 1
        network.run()
        assert network.pending_events() == 0

    def test_run_until_preserves_tie_break_order(self):
        # Two events from different channels arrive at the same virtual time;
        # their delivery order is decided by the send-time sequence numbers.
        # A run() stopped short of them must not disturb that order: the old
        # implementation popped the first too-late event and re-pushed it with
        # a *fresh* sequence number, demoting it behind its same-arrival peer.
        def build():
            network = SimulatedNetwork(node_count=3, latency_model=UniformLatencyModel(1.0))
            order = []
            network.register(1, lambda port, updates, now: order.append(port))
            network.register(0, lambda port, updates, now: None)
            network.register(2, lambda port, updates, now: None)
            network.send(0, 1, "first", [_update()], 10, at_time=0.0)
            network.send(2, 1, "second", [_update()], 10, at_time=0.0)
            return network, order

        network, baseline = build()
        network.run()
        assert baseline == ["first", "second"]

        network, order = build()
        network.run(until=0.5)  # both events sit beyond the horizon
        assert order == [] and network.pending_events() == 2
        network.run()
        assert order == baseline


class TestElasticMembership:
    def test_add_node_grows_the_cluster(self):
        network = SimulatedNetwork(node_count=2)
        new = network.add_node()
        assert new == 2 and network.node_count == 3
        received = []
        network.register(new, lambda port, updates, now: received.append(port))
        network.register(0, lambda port, updates, now: None)
        network.send(0, new, "view", [_update()], 10)
        network.run()
        assert received == ["view"]
        assert network.stats.node_count == 3

    def test_deactivate_excludes_from_active_nodes_only(self):
        network = SimulatedNetwork(node_count=3)
        network.register(1, lambda port, updates, now: None)
        network.deactivate(1)
        assert network.active_nodes() == [0, 2]
        assert not network.is_active(1) and network.is_active(0)
        # A decommissioned node still receives in-flight messages.
        network.send(0, 1, "view", [_update()], 10)
        network.run()
        assert network.stats.total_messages == 1

    def test_control_event_fires_between_deliveries(self):
        network = SimulatedNetwork(node_count=2, latency_model=UniformLatencyModel(0.01))
        fired = []
        order = []
        network.register(1, lambda port, updates, now: order.append((port, now)))
        network.register(0, lambda port, updates, now: None)
        network.send(0, 1, "early", [_update()], 10, at_time=0.0)
        network.send(0, 1, "late", [_update()], 10, at_time=0.02)
        network.schedule_control(lambda now: fired.append(now), at_time=0.015)
        network.run()
        assert fired == [0.015]
        assert [port for port, _ in order] == ["early", "late"]

    def test_epoch_stamping_and_stale_counting(self):
        epoch = [0]
        network = SimulatedNetwork(node_count=2, latency_model=UniformLatencyModel(0.01))
        network.set_epoch_provider(lambda: epoch[0])
        network.register(1, lambda port, updates, now: None)
        network.register(0, lambda port, updates, now: None)
        message = network.send(0, 1, "view", [_update()], 10, at_time=0.0)
        assert message.epoch == 0
        network.schedule_control(lambda now: epoch.__setitem__(0, 1), at_time=0.001)
        network.run()
        assert network.stats.stale_epoch_messages == 1

    def test_per_node_stats_rows(self):
        network = SimulatedNetwork(node_count=3)
        network.register(1, lambda port, updates, now: None)
        network.send(0, 1, "view", [_update(), _update()], 25, at_time=0.0)
        network.run()
        rows = {row["node"]: row for row in network.stats.per_node_rows()}
        assert rows[0]["messages_sent"] == 1 and rows[0]["bytes_sent"] == 25
        assert rows[1]["messages_received"] == 1
        assert rows[1]["updates_delivered"] == 2
        assert rows[2]["updates_delivered"] == 0


class TestMessage:
    def test_local_flag_and_counts(self):
        message = Message(src=2, dst=2, port="p", updates=(_update(), _update()), size_bytes=7, sent_at=1.0)
        assert message.is_local
        assert message.update_count == 2
        assert "p" in repr(message)


class TestDeliveryCoalescing:
    def test_same_channel_ready_messages_merge_into_one_delivery(self):
        from repro.data.batch import BatchPolicy

        network = SimulatedNetwork(
            node_count=2,
            latency_model=UniformLatencyModel(0.01),
            batch_policy=BatchPolicy(max_batch=10),
        )
        deliveries = []
        network.register(1, lambda port, updates, now: deliveries.append(len(updates)))
        network.register(0, lambda port, updates, now: None)
        # Same channel, same send time -> same arrival; the second message is
        # already queued when the first is delivered.
        network.send(0, 1, "view", [_update()], 10, at_time=0.0)
        network.send(0, 1, "view", [_update(), _update()], 10, at_time=0.0)
        network.run()
        assert deliveries == [3]
        assert network.coalesced_deliveries == 1

    def test_coalescing_respects_max_batch(self):
        from repro.data.batch import BatchPolicy

        network = SimulatedNetwork(
            node_count=2,
            latency_model=UniformLatencyModel(0.01),
            batch_policy=BatchPolicy(max_batch=2),
        )
        deliveries = []
        network.register(1, lambda port, updates, now: deliveries.append(len(updates)))
        network.register(0, lambda port, updates, now: None)
        for _ in range(3):
            network.send(0, 1, "view", [_update()], 10, at_time=0.0)
        network.run()
        assert deliveries == [2, 1]

    def test_tuple_at_a_time_policy_disables_coalescing(self):
        from repro.data.batch import BatchPolicy

        network = SimulatedNetwork(
            node_count=2,
            latency_model=UniformLatencyModel(0.01),
            batch_policy=BatchPolicy.tuple_at_a_time(),
        )
        deliveries = []
        network.register(1, lambda port, updates, now: deliveries.append(len(updates)))
        network.register(0, lambda port, updates, now: None)
        network.send(0, 1, "view", [_update()], 10, at_time=0.0)
        network.send(0, 1, "view", [_update()], 10, at_time=0.0)
        network.run()
        assert deliveries == [1, 1]
        assert network.coalesced_deliveries == 0

    def test_different_ports_never_merge(self):
        from repro.data.batch import BatchPolicy

        network = SimulatedNetwork(
            node_count=2,
            latency_model=UniformLatencyModel(0.01),
            batch_policy=BatchPolicy(max_batch=10),
        )
        order = []
        network.register(1, lambda port, updates, now: order.append(port))
        network.register(0, lambda port, updates, now: None)
        network.send(0, 1, "view", [_update()], 10, at_time=0.0)
        network.send(0, 1, "edge", [_update()], 10, at_time=0.0)
        network.run()
        assert order == ["view", "edge"]

    def test_wall_budget_enforced_inside_coalescing_drain(self):
        from repro.data.batch import BatchPolicy

        # One delivery whose coalescing drain consumes the entire queue: the
        # outer run loop only sees a single event, so the wall-clock deadline
        # must be checked inside the drain loop itself or an exhausted budget
        # silently completes.
        network = SimulatedNetwork(
            node_count=2,
            latency_model=UniformLatencyModel(0.01),
            batch_policy=BatchPolicy(max_batch=10_000),
            max_wall_seconds=0.0,
        )
        network.register(1, lambda port, updates, now: None)
        network.register(0, lambda port, updates, now: None)
        for _ in range(200):
            network.send(0, 1, "view", [_update()], 10, at_time=0.0)
        network.arm_wall_budget()
        with pytest.raises(SimulationBudgetExceeded):
            network.run()

    def test_message_counts_by_port_counts_wire_messages(self):
        network = SimulatedNetwork(node_count=3)
        network.register(1, lambda port, updates, now: None)
        network.send(0, 1, "purge", [_update(), _update()], 10, at_time=0.0)
        network.send(2, 1, "purge", [_update()], 10, at_time=0.0)
        network.run()
        assert network.stats.message_counts_by_port["purge"] == 2
        assert network.stats.messages_by_port["purge"] == 3
