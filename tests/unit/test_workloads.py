"""Unit tests for the workload generators (topologies, sensors, schedules)."""

import networkx as nx
import pytest

from repro.workloads import (
    SensorField,
    SensorWorkload,
    TransitStubConfig,
    UpdateSchedule,
    deletion_sample,
    generate_topology,
    insertion_prefix,
)
from repro.workloads.topology import (
    INTRA_STUB_LATENCY_MS,
    TRANSIT_STUB_LATENCY_MS,
    TRANSIT_TRANSIT_LATENCY_MS,
    topology_with_link_budget,
)


class TestTransitStubTopology:
    def test_node_count_matches_config(self):
        config = TransitStubConfig(nodes_per_stub=2, stubs_per_transit=2)
        topology = generate_topology(config)
        assert len(topology.nodes) == config.node_count

    def test_connected(self):
        topology = generate_topology(TransitStubConfig(nodes_per_stub=3))
        graph = nx.Graph()
        graph.add_nodes_from(topology.nodes)
        graph.add_edges_from((u, v) for u, v, _ in topology.edges)
        assert nx.is_connected(graph)

    def test_deterministic_for_seed(self):
        first = generate_topology(TransitStubConfig(seed=3))
        second = generate_topology(TransitStubConfig(seed=3))
        assert first.edges == second.edges
        different = generate_topology(TransitStubConfig(seed=4))
        assert different.edges != first.edges

    def test_dense_has_more_links_than_sparse(self):
        dense = generate_topology(TransitStubConfig(dense=True))
        sparse = generate_topology(TransitStubConfig(dense=False))
        assert dense.directed_link_count > sparse.directed_link_count

    def test_latency_classes(self):
        topology = generate_topology(TransitStubConfig())
        latencies = {latency for _, _, latency in topology.edges}
        assert latencies <= {
            TRANSIT_TRANSIT_LATENCY_MS,
            TRANSIT_STUB_LATENCY_MS,
            INTRA_STUB_LATENCY_MS,
        }

    def test_link_tuples_are_bidirectional(self):
        topology = generate_topology(TransitStubConfig(nodes_per_stub=2))
        pairs = {(t["src"], t["dst"]) for t in topology.link_tuples()}
        assert all((dst, src) in pairs for src, dst in pairs)
        assert len(pairs) == topology.directed_link_count

    def test_cost_link_tuples_carry_latency(self):
        topology = generate_topology(TransitStubConfig(nodes_per_stub=2))
        costs = {t["cost"] for t in topology.cost_link_tuples()}
        assert costs <= {
            TRANSIT_TRANSIT_LATENCY_MS,
            TRANSIT_STUB_LATENCY_MS,
            INTRA_STUB_LATENCY_MS,
        }

    def test_link_budget_generator(self):
        topology = topology_with_link_budget(80, dense=True)
        assert topology.directed_link_count >= 60
        with pytest.raises(ValueError):
            topology_with_link_budget(4)

    def test_multiple_transit_domains(self):
        topology = generate_topology(TransitStubConfig(transit_domains=2, nodes_per_stub=2))
        graph = nx.Graph()
        graph.add_edges_from((u, v) for u, v, _ in topology.edges)
        assert nx.is_connected(graph)


class TestSensorField:
    def test_grid_layout(self):
        field = SensorField.grid(side_metres=30, spacing_metres=10, seed_groups=2)
        assert len(field.sensors) == 16  # 4 x 4 grid
        assert len(field.seed_sensors) == 2

    def test_neighbors_within_radius(self):
        field = SensorField.grid(side_metres=30, spacing_metres=10, proximity_radius=15)
        neighbors = field.neighbors_of("s0_0")
        assert "s0_1" in neighbors and "s1_0" in neighbors
        assert "s3_3" not in neighbors

    def test_seed_queries(self):
        field = SensorField.grid(side_metres=20, spacing_metres=10, seed_groups=1)
        seed_id = next(iter(field.seed_sensors))
        assert field.is_seed(seed_id)
        assert field.region_of_seed(seed_id) == field.seed_sensors[seed_id]
        non_seed = next(s for s in field.sensor_ids if s != seed_id)
        assert field.region_of_seed(non_seed) is None


class TestSensorWorkload:
    @pytest.fixture()
    def workload(self):
        return SensorWorkload(SensorField.grid(side_metres=30, spacing_metres=10, seed_groups=2))

    def test_trigger_produces_proximity_edges(self, workload):
        sensor = workload.field.sensor_ids[0]
        delta = workload.trigger(sensor)
        assert all(t["src"] == sensor for t in delta.proximity_inserts)
        assert len(delta.proximity_inserts) == len(workload.field.neighbors_of(sensor))

    def test_trigger_seed_produces_seed_tuple(self, workload):
        seed = next(iter(workload.field.seed_sensors))
        delta = workload.trigger(seed)
        assert len(delta.seed_inserts) == 1
        assert delta.seed_inserts[0]["region"] == workload.field.seed_sensors[seed]

    def test_double_trigger_is_noop(self, workload):
        sensor = workload.field.sensor_ids[0]
        workload.trigger(sensor)
        assert workload.trigger(sensor).is_empty

    def test_untrigger_reverses_trigger(self, workload):
        sensor = workload.field.sensor_ids[0]
        inserted = workload.trigger(sensor)
        deleted = workload.untrigger(sensor)
        assert set(inserted.proximity_inserts) == set(deleted.proximity_deletes)
        assert workload.untrigger(sensor).is_empty

    def test_live_state_tracking(self, workload):
        seed = next(iter(workload.field.seed_sensors))
        workload.trigger(seed)
        assert seed in workload.live_seeds()
        assert all(src == seed for src, _ in workload.live_proximity_pairs())
        regions = workload.expected_regions()
        assert workload.field.seed_sensors[seed] in regions

    def test_trigger_many_merges(self, workload):
        sensors = workload.field.sensor_ids[:3]
        delta = workload.trigger_many(sensors)
        assert len({t["src"] for t in delta.proximity_inserts}) <= 3


class TestUpdateSchedules:
    def test_insertion_prefix(self):
        from repro.queries import link

        links = [link(str(i), str(i + 1)) for i in range(10)]
        assert insertion_prefix(links, 0.5) == links[:5]
        assert insertion_prefix(links, 1.0) == links
        with pytest.raises(ValueError):
            insertion_prefix(links, 1.5)

    def test_deletion_sample_deterministic(self):
        from repro.queries import link

        links = [link(str(i), str(i + 1)) for i in range(20)]
        first = deletion_sample(links, 0.3, seed=1)
        second = deletion_sample(links, 0.3, seed=1)
        assert first == second
        assert len(first) == 6
        assert deletion_sample(links, 0.3, seed=2) != first

    def test_staged_insertions(self):
        from repro.queries import link

        links = [link(str(i), str(i + 1)) for i in range(10)]
        schedule = UpdateSchedule.staged_insertions(links, [0.5, 1.0])
        assert schedule.total_insertions == 10
        assert len(schedule.insert_batches[0]) == 5
        with pytest.raises(ValueError):
            UpdateSchedule.staged_insertions(links, [1.0, 0.5])

    def test_insert_then_delete(self):
        from repro.queries import link

        links = [link(str(i), str(i + 1)) for i in range(10)]
        schedule = UpdateSchedule.insert_then_delete(links, 1.0, [0.2, 0.4])
        assert schedule.total_insertions == 10
        assert schedule.total_deletions == 4


class TestHotspotWorkload:
    def test_deterministic_in_seed(self):
        from repro.workloads.hotspot import generate_hotspot

        first = generate_hotspot(seed=11)
        second = generate_hotspot(seed=11)
        assert first.pairs == second.pairs
        assert generate_hotspot(seed=12).pairs != first.pairs

    def test_bias_concentrates_links_on_hubs(self):
        from repro.workloads.hotspot import generate_hotspot

        hot = generate_hotspot(spokes=12, hubs=2, hub_bias=0.9, extra_links=40, seed=3)
        cold = generate_hotspot(spokes=12, hubs=2, hub_bias=0.1, extra_links=40, seed=3)
        assert hot.hub_fraction > cold.hub_fraction

    def test_link_tuples_match_pairs_and_are_unique(self):
        from repro.workloads.hotspot import generate_hotspot

        workload = generate_hotspot(seed=7)
        tuples = workload.link_tuples()
        assert len(tuples) == len(set(tuples)) == len(workload.pairs)
        assert [(t["src"], t["dst"]) for t in tuples] == list(workload.pairs)
        assert all(src != dst for src, dst in workload.pairs)

    def test_graph_is_connected_through_hubs(self):
        from repro.baselines import reachable_pairs
        from repro.workloads.hotspot import generate_hotspot

        workload = generate_hotspot(spokes=6, hubs=2, extra_links=10, seed=5)
        truth = reachable_pairs(workload.edge_pairs())
        # Every hub reaches at least one spoke and vice versa.
        assert any((workload.hubs[0], spoke) in truth for spoke in workload.spokes)

    def test_invalid_parameters_rejected(self):
        import pytest

        from repro.workloads.hotspot import generate_hotspot

        with pytest.raises(ValueError):
            generate_hotspot(spokes=1)
        with pytest.raises(ValueError):
            generate_hotspot(hubs=0)
        with pytest.raises(ValueError):
            generate_hotspot(hub_bias=1.5)
        with pytest.raises(ValueError):
            generate_hotspot(extra_links=-1)
