"""Unit tests for the explain engine: parsing, products, rendering, injection."""

import json

import pytest

from repro.engine.strategy import ExecutionStrategy
from repro.obs.export import (
    validate_chrome_trace,
    validate_flow_balance,
    validate_track_monotonicity,
)
from repro.obs.explain import inject_explain_flows, parse_view_tuple
from repro.obs.trace import Tracer, install_tracer
from repro.provenance.tracker import format_base_key
from repro.queries import build_executor, reachability_plan

#: A 4-node string chain a -> b -> c -> d plus the shortcut a -> c, so
#: reachable(a, c) has exactly two minimal derivation products.
CHAIN_LINKS = [("a", "b"), ("b", "c"), ("c", "d"), ("a", "c")]


def _chain_executor(strategy=None, node_count=4):
    plan = reachability_plan()
    executor = build_executor(
        plan, strategy or ExecutionStrategy.absorption_lazy(), node_count=node_count
    )
    executor.insert_edges([plan.edge_schema.tuple(s, d) for s, d in CHAIN_LINKS])
    return executor


class TestParseViewTuple:
    def test_parses_relation_and_values(self):
        plan = reachability_plan()
        t = parse_view_tuple(plan, "reachable(a, b)")
        assert t.relation == "reachable" and t.values == ("a", "b")

    def test_strips_quotes_and_coerces_ints(self):
        plan = reachability_plan()
        assert parse_view_tuple(plan, "reachable('a', \"b\")").values == ("a", "b")
        assert parse_view_tuple(plan, "reachable(1, 2)").values == (1, 2)

    def test_tuple_passes_through(self):
        plan = reachability_plan()
        t = plan.result_schema.tuple("a", "b")
        assert parse_view_tuple(plan, t) is t

    def test_wrong_relation_rejected(self):
        with pytest.raises(ValueError, match="not 'link'"):
            parse_view_tuple(reachability_plan(), "link(a, b)")

    def test_wrong_arity_rejected(self):
        with pytest.raises(ValueError, match="expects 2 values"):
            parse_view_tuple(reachability_plan(), "reachable(a)")

    def test_garbage_rejected(self):
        with pytest.raises(ValueError, match="cannot parse"):
            parse_view_tuple(reachability_plan(), "not a tuple at all")


class TestExplainAbsorption:
    def test_products_are_the_minimal_derivations(self):
        executor = _chain_executor()
        explanation = executor.explain("reachable(a, c)")
        assert explanation.found
        products = [
            frozenset(tuple(ref["values"]) for ref in product)
            for product in explanation.products
        ]
        # Absorption keeps exactly the two minimal supports: the direct link
        # and the two-hop path; the three-hop detours are absorbed away.
        assert frozenset({("a", "c")}) in products
        assert frozenset({("a", "b"), ("b", "c")}) in products
        assert len(products) == 2

    def test_owners_resolve_via_partitioner(self):
        executor = _chain_executor()
        explanation = executor.explain("reachable(a, c)")
        for product in explanation.products:
            for ref in product:
                origin = executor.plan.edge_schema.tuple(*ref["values"])
                assert ref["owner"] == executor.partitioner.node_for(
                    origin.partition_value
                )
        assert explanation.owner == executor.partitioner.node_for(
            executor.plan.result_partition_value(
                executor.plan.result_schema.tuple("a", "c")
            )
        )

    def test_json_is_stable_and_serialisable(self):
        first = _chain_executor().explain("reachable(a, d)").as_json()
        second = _chain_executor().explain("reachable(a, d)").as_json()
        assert first == second
        assert json.loads(json.dumps(first, sort_keys=True)) == first

    def test_missing_tuple_reports_not_found(self):
        executor = _chain_executor()
        explanation = executor.explain("reachable(d, a)")
        assert not explanation.found
        assert explanation.products is None
        assert "NOT in the view" in explanation.render_text()

    def test_render_text_names_every_base_edge(self):
        executor = _chain_executor()
        text = executor.explain("reachable(a, c)").render_text()
        assert "derivable" in text
        assert "link(a, c)" in text and "link(a, b)" in text and "link(b, c)" in text


class TestExplainOtherSchemes:
    def test_dred_is_membership_only(self):
        executor = _chain_executor(ExecutionStrategy.dred())
        explanation = executor.explain("reachable(a, c)")
        assert explanation.found
        assert explanation.products is None
        assert "membership only" in explanation.render_text()

    def test_relative_products_match_absorption_minimal_products(self):
        relative = _chain_executor(ExecutionStrategy.relative_lazy()).explain(
            "reachable(a, c)"
        )
        absorption = _chain_executor().explain("reachable(a, c)")
        as_sets = lambda e: {
            frozenset(ref["label"] for ref in product) for product in e.products
        }
        # Relative provenance is not absorbed in-store; the engine applies the
        # antichain reduction, so both schemes explain identically.
        assert as_sets(relative) == as_sets(absorption)


class TestDescribe:
    def test_describe_is_deterministic_and_readable(self):
        executor = _chain_executor()
        annotation = executor.nodes[
            executor.explain("reachable(a, c)").owner
        ].view_annotation(executor.plan.result_schema.tuple("a", "c"))
        described = executor.store.describe(annotation)
        assert described == "(link(a, c)) | (link(a, b) & link(b, c))"
        assert executor.store.describe(annotation) == described

    def test_format_base_key_shapes(self):
        assert format_base_key((("link", "a", "b"), 0)) == "link(a, b)"
        assert format_base_key((("link", "a", "b"), 2)) == "link(a, b)#2"
        assert format_base_key("p1") == "p1"  # non-engine keys fall back to str


class TestTraceIntegration:
    def test_traced_run_explains_with_message_path(self):
        tracer = Tracer()
        install_tracer(tracer)
        try:
            executor = _chain_executor()
            explanation = executor.explain("reachable(a, d)")
        finally:
            install_tracer(None)
        assert explanation.found
        # Every reconstructed hop connects two involved nodes.
        involved = set(explanation.base_owners()) | {explanation.owner}
        for hop in explanation.message_path:
            assert hop["src"] in involved and hop["dst"] in involved
            assert hop["src"] != hop["dst"]

    def test_inject_explain_flows_keeps_trace_valid(self, tmp_path):
        from repro.obs.export import load_trace_events, write_trace

        tracer = Tracer()
        install_tracer(tracer)
        try:
            executor = _chain_executor()
            explanation = executor.explain("reachable(a, c)")
        finally:
            install_tracer(None)
        path = tmp_path / "trace.json"
        write_trace(tracer, path)
        injected = inject_explain_flows(explanation, path)
        # One instant plus an s/f pair per base ref across both products.
        assert injected == 1 + 2 * sum(len(p) for p in explanation.products)
        validate_chrome_trace(path)
        events = load_trace_events(path)
        assert any(
            event.get("cat") == "explain" and event.get("ph") == "i"
            for event in events
        )
        assert validate_flow_balance(events) == []
        assert validate_track_monotonicity(events) == []

    def test_inject_into_jsonl(self, tmp_path):
        from repro.obs.export import load_trace_events, write_trace

        tracer = Tracer()
        install_tracer(tracer)
        try:
            executor = _chain_executor()
            explanation = executor.explain("reachable(a, b)")
        finally:
            install_tracer(None)
        path = tmp_path / "trace.jsonl"
        write_trace(tracer, path)
        before = len(load_trace_events(path))
        injected = inject_explain_flows(explanation, path)
        assert injected > 0
        assert len(load_trace_events(path)) == before + injected
