"""Unit tests for engine-level components: strategies, plans, metrics, queries, baselines."""

import math

import pytest

from repro.baselines import CentralizedRecursiveEvaluator
from repro.baselines.networkx_ref import (
    cheapest_path_costs,
    connected_regions,
    fewest_hop_counts,
    reachable_pairs,
    region_sizes_reference,
)
from repro.engine.metrics import ExperimentMetrics, PhaseMetrics
from repro.engine.plan import PlanError, RecursiveViewPlan
from repro.engine.strategy import ExecutionStrategy
from repro.operators.ship import ShipMode
from repro.provenance import AbsorptionProvenanceStore, RelativeProvenanceStore
from repro.provenance.tracker import NullProvenanceStore
from repro.queries import (
    link,
    reachability_plan,
    reachable,
    region_plan,
    shortest_path_plan,
)
from repro.queries.reachability import BOUNDED_REACHABLE_SCHEMA, LINK_SCHEMA, REACHABLE_SCHEMA
from repro.queries.regions import active_region, largest_regions, proximity, region_sizes
from repro.queries.shortest_path import (
    cost_link,
    fewest_hop_paths,
    min_costs,
    min_hops,
    path_tuple,
    shortest_cheapest_paths,
)


class TestExecutionStrategy:
    def test_factory_labels(self):
        assert ExecutionStrategy.dred().label == "DRed"
        assert ExecutionStrategy.absorption_lazy().label == "Absorption Lazy"
        assert ExecutionStrategy.relative_eager().label == "Relative Eager"

    def test_by_name_roundtrip(self):
        for label in ["DRed", "Absorption Eager", "Absorption Lazy", "Relative Eager", "Relative Lazy"]:
            assert ExecutionStrategy.by_name(label).label == label
        with pytest.raises(ValueError):
            ExecutionStrategy.by_name("Magic")

    def test_store_creation_matches_kind(self):
        assert isinstance(ExecutionStrategy.dred().create_store(), NullProvenanceStore)
        assert isinstance(
            ExecutionStrategy.absorption_lazy().create_store(), AbsorptionProvenanceStore
        )
        assert isinstance(
            ExecutionStrategy.relative_lazy().create_store(), RelativeProvenanceStore
        )

    def test_flags(self):
        assert ExecutionStrategy.dred().uses_dred
        assert not ExecutionStrategy.dred().uses_provenance
        assert ExecutionStrategy.absorption_eager().ship_mode is ShipMode.EAGER
        assert ExecutionStrategy.absorption_lazy().uses_provenance


class TestRecursiveViewPlan:
    def test_reachability_plan_shape(self):
        plan = reachability_plan()
        assert plan.edge_schema is LINK_SCHEMA
        assert plan.result_schema is REACHABLE_SCHEMA
        assert plan.base_tuple_for(link("A", "B")) == reachable("A", "B")
        assert plan.combine(link("A", "B"), reachable("B", "C")) == reachable("A", "C")
        assert not plan.has_aggregate_selection

    def test_bounded_reachability_plan(self):
        plan = reachability_plan(max_hops=2)
        base = plan.base_tuple_for(link("A", "B"))
        assert base.schema is BOUNDED_REACHABLE_SCHEMA and base["hops"] == 1
        one_hop = plan.combine(link("X", "A"), base)
        assert one_hop["hops"] == 2
        assert plan.combine(link("Y", "X"), one_hop) is None
        with pytest.raises(ValueError):
            reachability_plan(max_hops=0)

    def test_plan_validation(self):
        with pytest.raises(PlanError):
            RecursiveViewPlan(
                name="bad",
                edge_schema=LINK_SCHEMA,
                result_schema=REACHABLE_SCHEMA,
                edge_join_attribute="nope",
                result_join_attribute="src",
                make_base=None,
                combine=lambda e, v: None,
            )
        with pytest.raises(PlanError):
            RecursiveViewPlan(
                name="bad",
                edge_schema=LINK_SCHEMA,
                result_schema=REACHABLE_SCHEMA,
                edge_join_attribute="dst",
                result_join_attribute="dst",  # not the partition attribute
                make_base=None,
                combine=lambda e, v: None,
            )

    def test_with_aggregate_specs(self):
        plan = shortest_path_plan(aggregate_selection="multi")
        assert len(plan.aggregate_specs) == 2
        single = plan.with_aggregate_specs(plan.aggregate_specs[:1])
        assert len(single.aggregate_specs) == 1

    def test_shortest_path_combine_guards(self):
        plan = shortest_path_plan(max_hops=2)
        base = plan.base_tuple_for(cost_link("B", "C", 1.0))
        assert base["vec"] == ("B", "C")
        extended = plan.combine(cost_link("A", "B", 2.0), base)
        assert extended["cost"] == 3.0 and extended["length"] == 2
        # cycle guard: A already on the path
        assert plan.combine(cost_link("C", "A", 1.0), extended) is None or True
        cyclic = plan.combine(cost_link("B", "A", 1.0), base)
        assert cyclic is None
        # hop bound
        assert plan.combine(cost_link("Z", "A", 1.0), extended) is None

    def test_region_plan_combine(self):
        plan = region_plan()
        assert plan.make_base is None
        derived = plan.combine(proximity("s1", "s2"), active_region("s1", "r1"))
        assert derived == active_region("s2", "r1")


class TestQueryPostProcessing:
    def _paths(self):
        return [
            path_tuple("A", "B", ("A", "B"), 5.0, 1),
            path_tuple("A", "B", ("A", "C", "B"), 3.0, 2),
            path_tuple("A", "C", ("A", "C"), 1.0, 1),
        ]

    def test_min_costs_and_hops(self):
        paths = self._paths()
        assert min_costs(paths)[("A", "B")] == 3.0
        assert min_hops(paths)[("A", "B")] == 1

    def test_cheapest_and_fewest(self):
        paths = self._paths()
        assert {p["vec"] for p in fewest_hop_paths(paths) if p["dst"] == "B"} == {("A", "B")}
        best = shortest_cheapest_paths(paths)
        ab = next(t for t in best if t["dst"] == "B")
        assert ab["cheapest_vec"] == ("A", "C", "B")
        assert ab["fewest_vec"] == ("A", "B")

    def test_region_aggregates(self):
        memberships = [
            active_region("s1", "r1"),
            active_region("s2", "r1"),
            active_region("s3", "r2"),
        ]
        assert region_sizes(memberships) == {"r1": 2, "r2": 1}
        assert largest_regions(memberships) == ["r1"]
        assert largest_regions([]) == []


class TestMetricsContainers:
    def test_phase_metrics_row(self):
        phase = PhaseMetrics(
            label="insert", per_tuple_provenance_bytes=12.5, communication_mb=1.5,
            state_mb=0.2, convergence_time_s=3.0, messages=10, updates_shipped=20, view_size=5,
        )
        row = phase.as_row()
        assert row["communication_MB"] == 1.5 and row["view_size"] == 5

    def test_experiment_metrics_aggregation(self):
        metrics = ExperimentMetrics(experiment="fig", scheme="Absorption Lazy")
        metrics.add_phase(PhaseMetrics("a", 10.0, 1.0, 0.5, 2.0, updates_shipped=10))
        metrics.add_phase(PhaseMetrics("b", 30.0, 2.0, 0.7, 3.0, updates_shipped=10))
        assert metrics.total_communication_mb == 3.0
        assert metrics.total_convergence_time_s == 5.0
        assert metrics.final_state_mb == 0.7
        assert metrics.mean_per_tuple_provenance_bytes == 20.0
        assert metrics.phase("a").label == "a"
        assert metrics.phase("missing") is None
        assert metrics.summary_row()["scheme"] == "Absorption Lazy"


class TestNetworkxBaselines:
    def test_reachable_pairs_includes_cycles(self):
        pairs = reachable_pairs([("a", "b"), ("b", "a"), ("b", "c")])
        assert ("a", "a") in pairs and ("b", "b") in pairs
        assert ("c", "c") not in pairs
        assert ("a", "c") in pairs

    def test_cheapest_path_costs(self):
        costs = cheapest_path_costs([("a", "b", 1.0), ("b", "c", 2.0), ("a", "c", 10.0)])
        assert costs[("a", "c")] == 3.0

    def test_fewest_hops(self):
        hops = fewest_hop_counts([("a", "b"), ("b", "c"), ("a", "c")])
        assert hops[("a", "c")] == 1

    def test_connected_regions(self):
        regions = connected_regions({"s1": "r1"}, [("s1", "s2"), ("s2", "s3"), ("s9", "s8")])
        assert regions == {"r1": {"s1", "s2", "s3"}}
        assert region_sizes_reference({"s1": "r1"}, [("s1", "s2")]) == {"r1": 2}

    def test_centralized_evaluator_matches_networkx(self):
        links = [link("a", "b"), link("b", "c"), link("c", "a")]
        evaluator = CentralizedRecursiveEvaluator(reachability_plan())
        values = evaluator.evaluate_values(links)
        assert values == reachable_pairs([("a", "b"), ("b", "c"), ("c", "a")])
        assert evaluator.iterations > 0

    def test_centralized_evaluator_with_seeds(self):
        plan = region_plan()
        evaluator = CentralizedRecursiveEvaluator(plan)
        view = evaluator.evaluate(
            [proximity("s1", "s2")], seeds=[active_region("s1", "r1")]
        )
        assert active_region("s2", "r1") in view
