"""Unit tests for the centralized Datalog substrate."""

import pytest

from repro.datalog import (
    AggregateView,
    Atom,
    Condition,
    CountingMaintenance,
    DatalogSyntaxError,
    DRedMaintenance,
    Program,
    ProvenanceMaintenance,
    Rule,
    SemiNaiveEvaluator,
    StratificationError,
    parse_program,
    parse_rule,
    stratify,
)
from repro.datalog.aggregates import AggregateKind
from repro.datalog.ast import Constant, Variable, atom
from repro.datalog.incremental import MaintenanceError
from repro.datalog.stratify import dependency_graph, recursive_predicates
from repro.provenance.semiring import BooleanSemiring, WhySemiring

REACHABLE_PROGRAM = """
reachable(x, y) :- link(x, y).
reachable(x, y) :- link(x, z), reachable(z, y).
"""

TRIANGLE_EDB = {"link": {("a", "b"), ("b", "c"), ("c", "a"), ("c", "b")}}


class TestAst:
    def test_atom_helper_strings_are_variables(self):
        a = atom("link", "x", "y")
        assert all(isinstance(t, Variable) for t in a.terms)

    def test_atom_helper_non_strings_are_constants(self):
        a = atom("link", "x", 5)
        assert isinstance(a.terms[1], Constant)

    def test_atom_match_extends_binding(self):
        a = atom("link", "x", "y")
        assert a.match(("a", "b"), {}) == {"x": "a", "y": "b"}
        assert a.match(("a", "b"), {"x": "z"}) is None
        assert a.match(("a",), {}) is None

    def test_atom_bind_requires_full_binding(self):
        a = atom("link", "x", "y")
        assert a.bind({"x": 1, "y": 2}) == (1, 2)
        with pytest.raises(KeyError):
            a.bind({"x": 1})

    def test_unsafe_rule_rejected(self):
        with pytest.raises(ValueError):
            Rule(head=atom("out", "x", "w"), body=(atom("in", "x", "y"),))

    def test_negated_head_rejected(self):
        with pytest.raises(ValueError):
            Rule(head=atom("out", "x", negated=True), body=(atom("in", "x"),))

    def test_condition_guard_and_assignment(self):
        guard = Condition(lambda b: b["x"] > 1, description="x > 1", requires=frozenset({"x"}))
        assert guard.apply({"x": 2}) == {"x": 2}
        assert guard.apply({"x": 0}) is None
        assign = Condition(
            lambda b: {"y": b["x"] + 1}, description="y = x+1",
            requires=frozenset({"x"}), provides=frozenset({"y"}),
        )
        assert assign.apply({"x": 1}) == {"x": 1, "y": 2}


class TestParser:
    def test_parse_single_rule(self):
        rule = parse_rule("reachable(x, y) :- link(x, y).")
        assert rule.head.predicate == "reachable"
        assert rule.body[0].predicate == "link"

    def test_parse_program_counts_rules(self):
        program = parse_program(REACHABLE_PROGRAM)
        assert len(program) == 2
        assert program.idb_predicates == {"reachable"}
        assert program.edb_predicates == {"link"}

    def test_parse_constants(self):
        rule = parse_rule('seed(x) :- sensor(x, "north"), threshold(x, 5).')
        assert rule.body[0].terms[1] == Constant("north")
        assert rule.body[1].terms[1] == Constant(5)

    def test_parse_comparison_condition(self):
        rule = parse_rule("cheap(x) :- link(x, y, c), c < 10.")
        assert len(rule.conditions) == 1
        assert rule.conditions[0].apply({"c": 5}) is not None
        assert rule.conditions[0].apply({"c": 50}) is None

    def test_parse_negation(self):
        rule = parse_rule("unreachable(x, y) :- node(x), node(y), not reachable(x, y).")
        assert rule.negative_body()[0].predicate == "reachable"

    def test_parse_comments_and_whitespace(self):
        program = parse_program(
            """
            % transitive closure
            reachable(x, y) :- link(x, y).
            """
        )
        assert len(program) == 1

    def test_syntax_errors(self):
        with pytest.raises(DatalogSyntaxError):
            parse_rule("reachable(x, y :- link(x, y).")
        with pytest.raises(DatalogSyntaxError):
            parse_rule("reachable(x, y)")
        with pytest.raises(DatalogSyntaxError):
            parse_program("reachable(x, y) :- link(x, y). @@@")


class TestStratification:
    def test_reachable_is_recursive_single_stratum(self):
        program = parse_program(REACHABLE_PROGRAM)
        assert program.is_recursive()
        assert stratify(program) == [frozenset({"reachable"})]

    def test_negation_creates_higher_stratum(self):
        program = parse_program(
            """
            reachable(x, y) :- link(x, y).
            reachable(x, y) :- link(x, z), reachable(z, y).
            unreachable(x, y) :- node(x), node(y), not reachable(x, y).
            """
        )
        strata = stratify(program)
        assert strata.index(frozenset({"reachable"})) < strata.index(frozenset({"unreachable"}))

    def test_negation_through_recursion_rejected(self):
        program = parse_program(
            """
            p(x) :- base(x), not q(x).
            q(x) :- base(x), not p(x).
            """
        )
        with pytest.raises(StratificationError):
            stratify(program)

    def test_recursive_predicates_detection(self):
        program = parse_program(REACHABLE_PROGRAM)
        graph = dependency_graph(program)
        assert recursive_predicates(graph) == {"reachable"}


class TestSemiNaive:
    def test_transitive_closure(self):
        evaluator = SemiNaiveEvaluator(parse_program(REACHABLE_PROGRAM))
        database = evaluator.evaluate(TRIANGLE_EDB)
        nodes = {"a", "b", "c"}
        assert database["reachable"] == {(x, y) for x in nodes for y in nodes}

    def test_matches_naive_evaluation(self):
        program = parse_program(REACHABLE_PROGRAM)
        evaluator = SemiNaiveEvaluator(program)
        edb = {"link": {("a", "b"), ("b", "c"), ("c", "d")}}
        assert evaluator.evaluate(edb)["reachable"] == evaluator.evaluate_naive(edb)["reachable"]

    def test_conditions_filter_derivations(self):
        program = parse_program(
            """
            shortHop(x, y) :- link(x, y, c), c < 10.
            """
        )
        evaluator = SemiNaiveEvaluator(program)
        database = evaluator.evaluate({"link": {("a", "b", 5), ("b", "c", 50)}})
        assert database["shortHop"] == {("a", "b")}

    def test_negation_in_higher_stratum(self):
        program = parse_program(
            """
            reachable(x, y) :- link(x, y).
            reachable(x, y) :- link(x, z), reachable(z, y).
            node(x) :- link(x, y).
            node(y) :- link(x, y).
            unreachable(x, y) :- node(x), node(y), not reachable(x, y).
            """
        )
        evaluator = SemiNaiveEvaluator(program)
        database = evaluator.evaluate({"link": {("a", "b"), ("b", "c")}})
        assert ("c", "a") in database["unreachable"]
        assert ("a", "c") not in database["unreachable"]

    def test_provenance_evaluation_posbool(self):
        program = parse_program(REACHABLE_PROGRAM)
        evaluator = SemiNaiveEvaluator(program)
        annotations = evaluator.evaluate_with_provenance(TRIANGLE_EDB, BooleanSemiring)
        cb = annotations["reachable"][("c", "b")]
        # reachable(c,b) is derivable directly via link(c,b) or via link(c,a), link(a,b).
        assert cb.evaluate({("link", "c", "b"): True})
        assert cb.evaluate({("link", "c", "a"): True, ("link", "a", "b"): True})
        assert not cb.evaluate({("link", "c", "a"): True})

    def test_provenance_evaluation_why(self):
        program = parse_program(REACHABLE_PROGRAM)
        evaluator = SemiNaiveEvaluator(program)
        annotations = evaluator.evaluate_with_provenance(
            {"link": {("a", "b"), ("b", "c")}}, WhySemiring
        )
        ac = annotations["reachable"][("a", "c")]
        assert frozenset({("link", "a", "b"), ("link", "b", "c")}) in ac

    def test_facts_with_empty_body(self):
        program = Program([Rule(head=atom("alwaysOn", Constant("s1")), body=())])
        evaluator = SemiNaiveEvaluator(program)
        assert evaluator.evaluate({})["alwaysOn"] == {("s1",)}


class TestIncrementalMaintenance:
    def test_counting_rejects_recursion(self):
        with pytest.raises(MaintenanceError):
            CountingMaintenance(parse_program(REACHABLE_PROGRAM))

    def test_counting_non_recursive(self):
        program = parse_program("twoHop(x, z) :- link(x, y), link(y, z).")
        counting = CountingMaintenance(program)
        counting.insert("link", ("a", "b"))
        counting.insert("link", ("b", "c"))
        assert counting.facts("twoHop") == {("a", "c")}
        counting.delete("link", ("a", "b"))
        assert counting.facts("twoHop") == set()

    def test_counting_rejects_idb_updates(self):
        program = parse_program("twoHop(x, z) :- link(x, y), link(y, z).")
        counting = CountingMaintenance(program)
        with pytest.raises(MaintenanceError):
            counting.insert("twoHop", ("a", "c"))

    def test_dred_maintains_reachable(self):
        dred = DRedMaintenance(parse_program(REACHABLE_PROGRAM))
        for fact in TRIANGLE_EDB["link"]:
            dred.insert("link", fact)
        nodes = {"a", "b", "c"}
        assert dred.facts("reachable") == {(x, y) for x in nodes for y in nodes}
        dred.delete("link", ("c", "b"))
        # Still fully connected without link(c,b) — but DRed over-deleted a lot.
        assert dred.facts("reachable") == {(x, y) for x in nodes for y in nodes}
        assert dred.last_overdeleted > 0
        assert dred.last_rederived > 0

    def test_provenance_maintenance_matches_recomputation(self):
        maintenance = ProvenanceMaintenance(parse_program(REACHABLE_PROGRAM))
        for fact in TRIANGLE_EDB["link"]:
            maintenance.insert("link", fact)
        maintenance.delete("link", ("c", "b"))
        evaluator = SemiNaiveEvaluator(parse_program(REACHABLE_PROGRAM))
        expected = evaluator.evaluate(
            {"link": TRIANGLE_EDB["link"] - {("c", "b")}}
        )["reachable"]
        assert maintenance.facts("reachable") == expected

    def test_provenance_of_fact(self):
        maintenance = ProvenanceMaintenance(parse_program(REACHABLE_PROGRAM))
        maintenance.insert("link", ("a", "b"))
        expr = maintenance.provenance_of("reachable", ("a", "b"))
        assert expr is not None and not expr.is_false()
        assert maintenance.provenance_of("reachable", ("z", "z")) is None

    def test_deletion_of_unknown_fact_is_noop(self):
        maintenance = ProvenanceMaintenance(parse_program(REACHABLE_PROGRAM))
        maintenance.insert("link", ("a", "b"))
        maintenance.delete("link", ("x", "y"))
        assert maintenance.facts("reachable") == {("a", "b")}


class TestAggregates:
    def test_count_aggregate(self):
        view = AggregateView("regionSizes", "activeRegion", (1,), AggregateKind.COUNT)
        database = {"activeRegion": {("s1", "r1"), ("s2", "r1"), ("s3", "r2")}}
        assert view.evaluate(database) == {("r1", 2), ("r2", 1)}

    def test_min_and_max(self):
        database = {"path": {("a", "b", 5), ("a", "b", 3), ("a", "c", 7)}}
        min_view = AggregateView("minCost", "path", (0, 1), AggregateKind.MIN, value_position=2)
        max_view = AggregateView("maxCost", "path", (0, 1), AggregateKind.MAX, value_position=2)
        assert min_view.evaluate(database) == {("a", "b", 3), ("a", "c", 7)}
        assert max_view.evaluate(database) == {("a", "b", 5), ("a", "c", 7)}

    def test_sum_and_avg(self):
        database = {"reading": {("s1", 10), ("s1", 20), ("s2", 5)}}
        total = AggregateView("total", "reading", (0,), AggregateKind.SUM, value_position=1)
        average = AggregateView("avg", "reading", (0,), AggregateKind.AVG, value_position=1)
        assert total.evaluate(database) == {("s1", 30), ("s2", 5)}
        assert average.evaluate(database) == {("s1", 15), ("s2", 5)}

    def test_requires_value_position(self):
        with pytest.raises(ValueError):
            AggregateView("minCost", "path", (0,), AggregateKind.MIN)

    def test_evaluate_into(self):
        view = AggregateView("sizes", "activeRegion", (1,), AggregateKind.COUNT)
        database = {"activeRegion": {("s1", "r1")}}
        view.evaluate_into(database)
        assert database["sizes"] == {("r1", 1)}
