"""Unit tests for the ROBDD manager (repro.bdd.manager)."""

import pytest

from repro.bdd import BDD, BDDManager
from repro.bdd.manager import BDDError


@pytest.fixture()
def mgr():
    return BDDManager()


class TestConstants:
    def test_true_false_distinct(self, mgr):
        assert mgr.true != mgr.false

    def test_true_is_true(self, mgr):
        assert mgr.true.is_true()
        assert not mgr.true.is_false()

    def test_false_is_false(self, mgr):
        assert mgr.false.is_false()
        assert not mgr.false.is_satisfiable()

    def test_bool_raises(self, mgr):
        with pytest.raises(TypeError):
            bool(mgr.true)


class TestVariables:
    def test_variable_is_satisfiable(self, mgr):
        p = mgr.variable("p")
        assert p.is_satisfiable()
        assert not p.is_true()
        assert not p.is_false()

    def test_same_name_same_node(self, mgr):
        assert mgr.variable("p") == mgr.variable("p")

    def test_different_names_different_nodes(self, mgr):
        assert mgr.variable("p") != mgr.variable("q")

    def test_variables_helper(self, mgr):
        p, q, r = mgr.variables("p", "q", "r")
        assert p != q != r

    def test_variable_count(self, mgr):
        mgr.variables("a", "b", "c")
        mgr.variable("a")
        assert mgr.variable_count == 3

    def test_has_variable(self, mgr):
        mgr.variable("x")
        assert mgr.has_variable("x")
        assert not mgr.has_variable("y")

    def test_index_of_unknown_raises(self, mgr):
        with pytest.raises(BDDError):
            mgr.index_of("missing")

    def test_hashable_non_string_names(self, mgr):
        key = ("link", "A", "B")
        var = mgr.variable(key)
        assert var.support_names() == frozenset({key})


class TestBooleanAlgebra:
    def test_and_identity(self, mgr):
        p = mgr.variable("p")
        assert (p & mgr.true) == p
        assert (p & mgr.false).is_false()

    def test_or_identity(self, mgr):
        p = mgr.variable("p")
        assert (p | mgr.false) == p
        assert (p | mgr.true).is_true()

    def test_idempotence(self, mgr):
        p = mgr.variable("p")
        assert (p & p) == p
        assert (p | p) == p

    def test_commutativity(self, mgr):
        p, q = mgr.variables("p", "q")
        assert (p & q) == (q & p)
        assert (p | q) == (q | p)

    def test_associativity(self, mgr):
        p, q, r = mgr.variables("p", "q", "r")
        assert ((p & q) & r) == (p & (q & r))
        assert ((p | q) | r) == (p | (q | r))

    def test_distributivity(self, mgr):
        p, q, r = mgr.variables("p", "q", "r")
        assert (p & (q | r)) == ((p & q) | (p & r))

    def test_de_morgan(self, mgr):
        p, q = mgr.variables("p", "q")
        assert ~(p & q) == (~p | ~q)
        assert ~(p | q) == (~p & ~q)

    def test_double_negation(self, mgr):
        p = mgr.variable("p")
        assert ~~p == p

    def test_excluded_middle(self, mgr):
        p = mgr.variable("p")
        assert (p | ~p).is_true()
        assert (p & ~p).is_false()

    def test_absorption_law(self, mgr):
        """The law that gives absorption provenance its name."""
        p, q = mgr.variables("p", "q")
        assert (p & (p | q)) == p
        assert (p | (p & q)) == p

    def test_absorption_across_derivations(self, mgr):
        p1, p2, p3 = mgr.variables("p1", "p2", "p3")
        redundant = (p1 & p2) | (p1 & p2 & p3)
        assert redundant == (p1 & p2)

    def test_xor(self, mgr):
        p, q = mgr.variables("p", "q")
        assert (p ^ p).is_false()
        assert (p ^ mgr.false) == p
        assert (p ^ q) == ((p & ~q) | (~p & q))

    def test_implies(self, mgr):
        p, q = mgr.variables("p", "q")
        assert (p & q).implies(p)
        assert not p.implies(p & q)

    def test_ite(self, mgr):
        p, q, r = mgr.variables("p", "q", "r")
        assert mgr.ite(p, q, r) == ((p & q) | (~p & r))

    def test_conjoin_disjoin_collections(self, mgr):
        p, q, r = mgr.variables("p", "q", "r")
        assert mgr.conjoin([p, q, r]) == (p & q & r)
        assert mgr.disjoin([p, q, r]) == (p | q | r)
        assert mgr.conjoin([]).is_true()
        assert mgr.disjoin([]).is_false()

    def test_mixed_managers_raise(self, mgr):
        other = BDDManager()
        with pytest.raises(BDDError):
            mgr.variable("p") & other.variable("p")


class TestRestrict:
    def test_restrict_to_true(self, mgr):
        p, q = mgr.variables("p", "q")
        assert (p & q).restrict({"p": True}) == q

    def test_restrict_to_false_kills_conjunction(self, mgr):
        p, q = mgr.variables("p", "q")
        assert (p & q).restrict({"p": False}).is_false()

    def test_restrict_unknown_variable_is_noop(self, mgr):
        p = mgr.variable("p")
        assert p.restrict({"zzz": False}) == p

    def test_without_deletes_base_tuples(self, mgr):
        p1, p2, p3 = mgr.variables("p1", "p2", "p3")
        pv = (p1 & p2) | p3
        assert pv.without(["p3"]) == (p1 & p2)
        assert pv.without(["p1", "p3"]).is_false()

    def test_paper_example_deletion(self, mgr):
        """Figure 2: reachable(C,B) has pv = p4 | (p1 & p3); deleting p4 keeps it alive."""
        p1, p2, p3, p4 = mgr.variables("p1", "p2", "p3", "p4")
        pv = p4 | (p1 & p3)
        after = pv.without(["p4"])
        assert not after.is_false()
        assert after == (p1 & p3)

    def test_exist_quantification(self, mgr):
        p, q = mgr.variables("p", "q")
        assert (p & q).exist(["q"]) == p
        assert (p & ~p).exist(["p"]).is_false()
        assert (p | q).exist(["p", "q"]).is_true()


class TestStructuralQueries:
    def test_node_count_terminal(self, mgr):
        assert mgr.true.node_count() == 0
        assert mgr.false.node_count() == 0

    def test_node_count_variable(self, mgr):
        assert mgr.variable("p").node_count() == 1

    def test_size_bytes_monotone_in_nodes(self, mgr):
        p, q, r = mgr.variables("p", "q", "r")
        small = p
        large = (p & q) | (q & r) | (p & r)
        assert large.size_bytes() >= small.size_bytes()

    def test_support(self, mgr):
        p, q, r = mgr.variables("p", "q", "r")
        expr = (p & q) | (q & r)
        assert expr.support_names() == frozenset({"p", "q", "r"})
        assert (p & ~p).support() == frozenset()

    def test_sat_count(self, mgr):
        p, q = mgr.variables("p", "q")
        assert (p & q).sat_count() == 1
        assert (p | q).sat_count() == 3
        assert mgr.true.sat_count() == 4
        assert mgr.false.sat_count() == 0

    def test_sat_count_with_free_variable(self, mgr):
        p, q, r = mgr.variables("p", "q", "r")
        # p alone: q and r free -> 4 assignments
        assert p.sat_count() == 4

    def test_any_sat(self, mgr):
        p, q = mgr.variables("p", "q")
        assignment = (p & ~q).any_sat()
        assert assignment == {"p": True, "q": False}
        assert mgr.false.any_sat() is None

    def test_evaluate(self, mgr):
        p, q = mgr.variables("p", "q")
        expr = p & ~q
        assert expr.evaluate({"p": True, "q": False})
        assert not expr.evaluate({"p": True, "q": True})

    def test_evaluate_missing_variable_raises(self, mgr):
        p, q = mgr.variables("p", "q")
        with pytest.raises(BDDError):
            (p & q).evaluate({"p": True})

    def test_iter_products_monotone(self, mgr):
        p1, p2, p3 = mgr.variables("p1", "p2", "p3")
        pv = (p1 & p2) | p3
        products = set(pv.iter_products())
        # p3 alone is a product; p1&p2 is a product (possibly with p3 absent).
        assert frozenset({"p3"}) in products
        assert any(prod >= {"p1", "p2"} for prod in products)

    def test_from_products_roundtrip(self, mgr):
        pv = mgr.from_products([["p1", "p2"], ["p3"]])
        p1, p2, p3 = mgr.variable("p1"), mgr.variable("p2"), mgr.variable("p3")
        assert pv == ((p1 & p2) | p3)

    def test_clear_caches_preserves_semantics(self, mgr):
        p, q = mgr.variables("p", "q")
        expr = p | q
        mgr.clear_caches()
        assert (expr & p) == p


class TestCanonicity:
    def test_equivalent_expressions_share_node(self, mgr):
        p, q, r = mgr.variables("p", "q", "r")
        left = ~(~p & ~q)
        right = p | q
        assert left.node == right.node

    def test_repr_smoke(self, mgr):
        p = mgr.variable("p")
        assert "BDD" in repr(p)
        assert "True" in repr(mgr.true)
        assert "False" in repr(mgr.false)


class TestCacheBoundsAndCounters:
    def test_apply_cache_counts_hits_and_misses(self, mgr):
        p, q = mgr.variables("p", "q")
        _ = p & q
        first = mgr.cache_stats()
        assert first["apply_calls"] > 0
        assert first["apply"]["misses"] > 0
        _ = p & q  # identical operation: memoised
        second = mgr.cache_stats()
        assert second["apply"]["hits"] > first["apply"]["hits"]

    def test_size_memo_hits_on_repeated_measurement(self, mgr):
        p, q, r = mgr.variables("p", "q", "r")
        pv = (p & q) | r
        assert pv.node_count() == pv.node_count()
        stats = mgr.cache_stats()
        assert stats["size"]["hits"] >= 1
        assert stats["size"]["misses"] >= 1
        # Memoised sizes agree with a cold recount.
        mgr.clear_caches()
        assert pv.node_count() == pv.size_bytes() // 16

    def test_caches_are_bounded_and_evict_wholesale(self):
        tiny = BDDManager(cache_limit=4)
        variables = tiny.variables(*[f"v{i}" for i in range(12)])
        acc = tiny.false
        for var in variables:
            acc = acc | var
        stats = tiny.cache_stats()
        assert stats["apply"]["entries"] < 4 + 1
        assert stats["apply"]["evictions"] >= 1
        # Semantics survive evictions (the node table is untouched): the
        # disjunction dies exactly when every variable is zeroed out.
        assert acc.is_satisfiable()
        names = [f"v{i}" for i in range(12)]
        assert acc.without(names[:-1]) == variables[-1]
        assert acc.without(names).is_false()

    def test_bounded_restrict_still_correct(self):
        tiny = BDDManager(cache_limit=2)
        p, q, r, s = tiny.variables("p", "q", "r", "s")
        pv = (p & q) | (r & s)
        assert pv.without(["p", "r"]).is_false()
        assert pv.without(["p"]) == (r & s)
        assert tiny.cache_stats()["restrict"]["misses"] > 0

    def test_cache_limit_must_be_positive(self):
        with pytest.raises(ValueError):
            BDDManager(cache_limit=0)

    def test_clear_caches_keeps_counters(self, mgr):
        p, q = mgr.variables("p", "q")
        _ = p & q
        before = mgr.cache_stats()["apply"]["misses"]
        mgr.clear_caches()
        after = mgr.cache_stats()
        assert after["apply"]["misses"] == before
        assert after["apply"]["entries"] == 0
