"""Unit tests for the chaos plane's deterministic building blocks.

Everything the chaos plane does is a pure function of ``(seed, stream tag,
identifiers)`` — these tests pin that property (including a hard-coded mixer
value so an accidental switch to the per-process-salted builtin ``hash``
cannot slip through), exercise the interposer's exactly-once accounting on a
real simulator run, and check the supervisor's bounded exponential backoff.

The two fault-surfacing satellites live here too: dropped held messages must
show up in ``NetworkStats`` (and the executor's metric probes), and each drop
must leave a ``held-message-dropped`` instant on the tracer.
"""

import pytest

from repro.chaos.interposer import ChaosInterposer
from repro.chaos.plan import (
    PROFILES,
    TAG_DROP,
    TAG_DUP,
    ChaosPlan,
    CrashStormSpec,
    LinkChaosSpec,
    RecoveryFaultSpec,
    WorkerKillSpec,
    mix64,
    unit,
)
from repro.chaos.supervisor import (
    ChaosInjectedFailure,
    RetryPolicy,
    SupervisionExhausted,
    Supervisor,
)
from repro.fault import fault_tolerant_executor
from repro.obs.trace import Tracer, install_tracer
from repro.queries import build_executor, link, reachability_plan
from repro.workloads.chaos import generate_chaos_workload, generate_power_law


class TestDecisionStreams:
    def test_mix64_is_deterministic_and_part_sensitive(self):
        assert mix64(1, "a", 2) == mix64(1, "a", 2)
        assert mix64(1, "a", 2) != mix64(1, "a", 3)
        assert mix64(1, "a", 2) != mix64(2, "a", 2)
        assert mix64(1, "a", 2) != mix64(1, "b", 2)

    def test_mix64_strings_do_not_use_the_salted_builtin_hash(self):
        # Pinned value: FNV-1a + splitmix64 is process- and run-independent.
        # The builtin ``hash`` is salted per process and would break replay.
        assert mix64("chaos") == 15165182779118534730
        assert mix64(11, "chaos/drop", 0, 1, 0) == 3613608844239117960

    def test_unit_stays_in_the_half_open_interval(self):
        samples = [unit(seed, "tag", i) for seed in range(5) for i in range(40)]
        assert all(0.0 <= s < 1.0 for s in samples)
        assert len(set(samples)) > 150  # no obvious stream collapse

    def test_plan_streams_are_independent_per_tag(self):
        plan = ChaosPlan(seed=11)
        drops = [plan.unit(TAG_DROP, 0, 1, i) for i in range(20)]
        dups = [plan.unit(TAG_DUP, 0, 1, i) for i in range(20)]
        assert drops != dups
        assert drops == [ChaosPlan(seed=11).unit(TAG_DROP, 0, 1, i) for i in range(20)]


class TestSpecsAndProfiles:
    def test_link_spec_rejects_non_probabilities(self):
        with pytest.raises(ValueError):
            LinkChaosSpec(drop_prob=1.5)
        with pytest.raises(ValueError):
            LinkChaosSpec(dup_prob=-0.1)
        with pytest.raises(ValueError):
            LinkChaosSpec(max_retransmits=-1)

    def test_link_spec_active_flag(self):
        assert not LinkChaosSpec().active
        assert LinkChaosSpec(drop_prob=0.1).active
        assert LinkChaosSpec(dup_prob=0.1).active
        assert LinkChaosSpec(delay_prob=0.1).active

    def test_every_named_profile_builds_and_carries_its_name(self):
        for name in PROFILES:
            plan = ChaosPlan.profile(name, seed=3)
            assert plan.name == name
            assert plan.seed == 3

    def test_unknown_profile_lists_the_known_ones(self):
        with pytest.raises(ValueError, match="degraded"):
            ChaosPlan.profile("nope")

    def test_parity_safe_profiles_keep_doom_within_the_default_budget(self):
        budget = RetryPolicy().max_attempts
        for name in ("none", "link", "storm", "full", "kill"):
            plan = ChaosPlan.profile(name, seed=11)
            worst = max(plan.forced_recovery_failures(node) for node in range(32))
            assert worst < budget, f"profile {name} would exhaust the supervisor"

    def test_degraded_profile_dooms_every_recovery_past_any_budget(self):
        plan = ChaosPlan.profile("degraded", seed=11)
        assert all(
            plan.forced_recovery_failures(node) > RetryPolicy().max_attempts
            for node in range(8)
        )


class TestPlanSchedules:
    def test_kill_schedule_is_sorted_bounded_and_deterministic(self):
        plan = ChaosPlan(seed=11, kills=WorkerKillSpec(kills=4, window=(0.2, 0.7)))
        schedule = plan.kill_schedule(workers=3)
        assert schedule == plan.kill_schedule(workers=3)
        assert len(schedule) == 4
        assert list(schedule) == sorted(schedule)
        for frac, wid in schedule:
            assert 0.2 <= frac <= 0.7
            assert 0 <= wid < 3

    def test_kill_schedule_is_empty_without_workers_or_spec(self):
        assert ChaosPlan(seed=1).kill_schedule(4) == ()
        plan = ChaosPlan(seed=1, kills=WorkerKillSpec(kills=2))
        assert plan.kill_schedule(0) == ()

    def test_forced_failures_respect_the_spec_bounds(self):
        plan = ChaosPlan(seed=11, recovery=RecoveryFaultSpec(0.5, max_failures=3))
        counts = [plan.forced_recovery_failures(node) for node in range(64)]
        assert all(0 <= count <= 3 for count in counts)
        assert any(counts), "probability 0.5 over 64 nodes should gate someone"
        assert any(count == 0 for count in counts)

    def test_attempt_fails_matches_the_forced_count(self):
        plan = ChaosPlan(seed=11, respawn=RecoveryFaultSpec(1.0, max_failures=2))
        for wid in range(8):
            forced = plan.forced_respawn_failures(wid)
            assert forced >= 1
            assert plan.respawn_attempt_fails(wid, forced)
            assert not plan.respawn_attempt_fails(wid, forced + 1)

    def test_storm_scenario_covers_the_window(self):
        plan = ChaosPlan(seed=11, storm=CrashStormSpec(cycles=2, window=(0.1, 0.9)))
        assert ChaosPlan(seed=11).storm_scenario(6) is None
        scenario = plan.storm_scenario(6)
        assert scenario is not None


class TestInterposer:
    LINKS = [("a", "b"), ("b", "c"), ("c", "d"), ("d", "a"), ("a", "c"), ("b", "d")]

    def _run(self, plan):
        executor = build_executor(reachability_plan(), "Absorption Eager", node_count=4)
        interposer = None
        if plan is not None:
            interposer = ChaosInterposer(plan).attach(executor.network)
        executor.insert_edges([link(a, b) for a, b in self.LINKS])
        return executor.view(), interposer

    def test_link_faults_are_masked_and_fully_accounted(self):
        plan = ChaosPlan.profile("link", seed=11)
        reference, _ = self._run(None)
        view, interposer = self._run(plan)
        assert view == reference  # parity in miniature
        stats = interposer.stats
        assert stats.messages_seen > 0
        assert stats.dropped_copies > 0
        assert stats.delayed_messages > 0
        # Exactly-once: every injected ghost was delivered and suppressed.
        assert stats.duplicates_injected == stats.duplicates_suppressed
        assert stats.duplicates_injected > 0
        assert stats.extra_delay_total > 0.0
        assert stats.max_extra_delay <= stats.extra_delay_total

    def test_interposer_is_bit_deterministic(self):
        plan = ChaosPlan.profile("link", seed=42)
        _, first = self._run(plan)
        _, second = self._run(ChaosPlan.profile("link", seed=42))
        assert first.stats.as_dict() == second.stats.as_dict()

    def test_inactive_plan_adds_nothing(self):
        _, interposer = self._run(ChaosPlan.profile("none", seed=1))
        assert interposer.stats.dropped_copies == 0
        assert interposer.stats.duplicates_injected == 0


class TestSupervisor:
    def test_backoff_grows_exponentially_and_caps(self):
        supervisor = Supervisor(
            RetryPolicy(base_delay=0.1, multiplier=2.0, max_delay=0.5, jitter=0.0)
        )
        delays = [supervisor.backoff("node:2", attempt) for attempt in (1, 2, 3, 4, 5)]
        assert delays[:3] == [0.1, 0.2, 0.4]
        assert delays[3] == delays[4] == 0.5  # capped

    def test_backoff_jitter_is_bounded_and_seeded(self):
        policy = RetryPolicy(base_delay=0.1, multiplier=1.0, jitter=0.5)
        one = Supervisor(policy, seed=1)
        two = Supervisor(policy, seed=2)
        for attempt in (1, 2, 3):
            delay = one.backoff("x", attempt)
            assert 0.1 <= delay <= 0.1 * 1.5
            assert delay == Supervisor(policy, seed=1).backoff("x", attempt)
        assert [one.backoff("x", a) for a in (1, 2)] != [
            two.backoff("x", a) for a in (1, 2)
        ]

    def test_run_retries_until_success_and_reports(self):
        supervisor = Supervisor(RetryPolicy(max_attempts=4, base_delay=0.01))
        backoffs = []

        def flaky(attempt):
            if attempt <= 2:
                raise ChaosInjectedFailure(f"doomed attempt {attempt}")
            return "recovered"

        result = supervisor.run(
            "node:5", flaky, on_backoff=lambda attempt, delay: backoffs.append(delay)
        )
        assert result == "recovered"
        assert len(backoffs) == 2
        assert all(delay > 0 for delay in backoffs)
        assert supervisor.stats() == {
            "supervised_actions": 1,
            "supervised_retries": 2,
            "supervised_exhausted": 0,
        }

    def test_budget_exhaustion_raises_and_is_counted(self):
        supervisor = Supervisor(RetryPolicy(max_attempts=3, base_delay=0.01))

        def doomed(attempt):
            raise ChaosInjectedFailure("always")

        with pytest.raises(SupervisionExhausted) as excinfo:
            supervisor.run("node:6", doomed)
        assert excinfo.value.attempts == 3
        assert supervisor.stats()["supervised_exhausted"] == 1

    def test_unexpected_exceptions_are_not_swallowed(self):
        supervisor = Supervisor(RetryPolicy(max_attempts=5))
        with pytest.raises(ValueError):
            supervisor.run("node:7", lambda attempt: (_ for _ in ()).throw(ValueError()))
        assert supervisor.stats()["supervised_actions"] == 0

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=-1.0)


class TestChaosWorkload:
    def test_power_law_graph_is_deterministic_with_hubs(self):
        graph = generate_power_law(vertices=40, attach=2, seed=5)
        again = generate_power_law(vertices=40, attach=2, seed=5)
        assert graph.pairs == again.pairs
        degrees = sorted(graph.degrees().values())
        assert degrees[-1] >= 4 * degrees[len(degrees) // 2], "no hub emerged"
        assert graph.hubs(2)[0] != graph.hubs(2)[1]

    def test_workload_phases_partition_the_graph(self):
        workload = generate_chaos_workload(links=60, seed=11)
        phases = workload.phases()
        assert [label for label, _, _ in phases] == ["insert", "skew", "deletion-storm"]
        inserted = set(workload.base_pairs) | set(workload.skew_insert_pairs)
        deleted = set(workload.skew_delete_pairs) | set(workload.storm_delete_pairs)
        assert deleted <= inserted, "every deletion targets an inserted link"
        assert set(workload.final_pairs()) == inserted - deleted
        assert workload.total_links == len(inserted)
        # The phase stream carries one link tuple per pair.
        assert len(phases[0][1]) == len(workload.base_pairs)
        assert len(phases[1][2]) == len(workload.skew_delete_pairs)
        assert len(phases[2][2]) == len(workload.storm_delete_pairs)

    def test_workload_is_seed_sensitive(self):
        one = generate_chaos_workload(links=60, seed=11)
        two = generate_chaos_workload(links=60, seed=12)
        assert one.storm_delete_pairs != two.storm_delete_pairs


class TestFaultSurfaces:
    """Satellites: dropped held messages must be visible, counted and traced."""

    LINKS = [("a", "b"), ("b", "c"), ("c", "d"), ("d", "e"), ("e", "a"), ("b", "e")]

    def _purge_run(self):
        """Crash a node with traffic in flight under provenance purge.

        Purge tears down peer channels to the dead node, so the messages its
        channels held during downtime are dropped on recovery instead of
        redelivered — the surface the satellite tests pin.
        """
        executor = fault_tolerant_executor(
            reachability_plan(),
            "Absorption Lazy",
            recovery_policy="provenance-purge",
            checkpoint_interval=5,
            node_count=4,
        )
        edges = [link(a, b) for a, b in self.LINKS]
        executor.insert_edges(edges[:2])
        start = executor.network.now
        executor.schedule_crash(2, at_time=start)
        executor.insert_edges(edges[2:])  # routed or held while node 2 is down
        executor.schedule_recovery(2, at_time=executor.network.now + 1.0)
        executor.network.run()
        return executor

    def test_dropped_held_messages_surface_in_stats_and_probes(self):
        executor = self._purge_run()
        dropped = executor.network.dropped_messages
        assert dropped > 0
        assert executor.network.stats.dropped_messages == dropped
        assert executor.network.stats.summary()["dropped_messages"] == float(dropped)
        assert executor.fault_stats()["dropped_messages"] == dropped

    def test_each_dropped_held_message_leaves_a_tracer_instant(self):
        tracer = Tracer()
        previous = install_tracer(tracer)
        try:
            executor = self._purge_run()
            dropped = executor.network.dropped_messages
        finally:
            install_tracer(previous if isinstance(previous, Tracer) else None)
        instants = [
            event
            for event in tracer.events
            if event.get("name") == "held-message-dropped"
        ]
        assert dropped > 0
        assert len(instants) == dropped
        assert all(event["args"]["updates"] >= 1 for event in instants)
