"""Unit tests for schemas, tuples, updates, relations, streams and windows."""

import pytest

from repro.data import (
    PartitionedRelation,
    Relation,
    Schema,
    SlidingWindow,
    Update,
    UpdateStream,
    UpdateType,
)
from repro.data.relation import stable_hash
from repro.data.tuples import SchemaError, make_schema
from repro.data.update import delete, insert


@pytest.fixture()
def link_schema():
    return make_schema("link", ["src", "dst", "cost"])


@pytest.fixture()
def link(link_schema):
    return link_schema.tuple("A", "B", 1.0)


class TestSchema:
    def test_default_partition_attribute_is_first(self, link_schema):
        assert link_schema.partition_attribute == "src"

    def test_explicit_partition_attribute(self):
        schema = make_schema("reachable", ["src", "dst"], partition_attribute="dst")
        assert schema.partition_attribute == "dst"

    def test_empty_schema_rejected(self):
        with pytest.raises(SchemaError):
            Schema("empty", ())

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(SchemaError):
            Schema("dup", ("a", "a"))

    def test_unknown_partition_attribute_rejected(self):
        with pytest.raises(SchemaError):
            Schema("r", ("a", "b"), partition_attribute="c")

    def test_index_of(self, link_schema):
        assert link_schema.index_of("dst") == 1
        with pytest.raises(SchemaError):
            link_schema.index_of("nope")

    def test_tuple_positional_and_named(self, link_schema):
        by_pos = link_schema.tuple("A", "B", 2.0)
        by_name = link_schema.tuple(src="A", dst="B", cost=2.0)
        assert by_pos == by_name

    def test_tuple_arity_mismatch(self, link_schema):
        with pytest.raises(SchemaError):
            link_schema.tuple("A", "B")

    def test_tuple_mixed_args_rejected(self, link_schema):
        with pytest.raises(SchemaError):
            link_schema.tuple("A", dst="B", cost=1.0)


class TestTuple:
    def test_getitem(self, link):
        assert link["src"] == "A"
        assert link["cost"] == 1.0

    def test_get_with_default(self, link):
        assert link.get("missing", 42) == 42

    def test_partition_value(self, link):
        assert link.partition_value == "A"

    def test_key_includes_relation(self, link):
        assert link.key == ("link", "A", "B", 1.0)

    def test_as_dict(self, link):
        assert link.as_dict() == {"src": "A", "dst": "B", "cost": 1.0}

    def test_replace(self, link):
        changed = link.replace(cost=9.0)
        assert changed["cost"] == 9.0
        assert link["cost"] == 1.0

    def test_replace_unknown_attribute(self, link):
        with pytest.raises(SchemaError):
            link.replace(nope=1)

    def test_project(self, link):
        pair_schema = make_schema("pair", ["src", "dst"])
        projected = link.project(pair_schema, ["src", "dst"])
        assert projected.values == ("A", "B")
        assert projected.relation == "pair"

    def test_size_bytes_positive_and_monotone(self, link_schema):
        small = link_schema.tuple("A", "B", 1)
        big = link_schema.tuple("A" * 50, "B" * 50, 1)
        assert 0 < small.size_bytes() < big.size_bytes()

    def test_hashable(self, link, link_schema):
        same = link_schema.tuple("A", "B", 1.0)
        assert hash(link) == hash(same)
        assert {link} == {same}

    def test_iter_and_repr(self, link):
        assert list(link) == ["A", "B", 1.0]
        assert "link(" in repr(link)


class TestUpdate:
    def test_insert_delete_helpers(self, link):
        assert insert(link).is_insert
        assert delete(link).is_delete

    def test_inverted(self, link):
        assert insert(link).inverted().type is UpdateType.DEL
        assert delete(link).inverted().type is UpdateType.INS

    def test_with_provenance_and_timestamp(self, link):
        update = insert(link).with_provenance("pv").with_timestamp(3.5)
        assert update.provenance == "pv"
        assert update.timestamp == 3.5

    def test_size_bytes_includes_provenance(self, link):
        update = insert(link)
        assert update.size_bytes(provenance_bytes=100) == update.size_bytes() + 100

    def test_relation_property(self, link):
        assert insert(link).relation == "link"


class TestRelation:
    def test_add_is_set_semantics(self, link_schema, link):
        relation = Relation(link_schema)
        assert relation.add(link)
        assert not relation.add(link)
        assert len(relation) == 1

    def test_discard(self, link_schema, link):
        relation = Relation(link_schema, [link])
        assert relation.discard(link)
        assert not relation.discard(link)
        assert len(relation) == 0

    def test_apply_updates(self, link_schema, link):
        relation = Relation(link_schema)
        assert relation.apply(insert(link))
        assert relation.apply(delete(link))
        assert not relation.apply(delete(link))

    def test_schema_mismatch_rejected(self, link_schema):
        other = make_schema("other", ["x"])
        relation = Relation(link_schema)
        with pytest.raises(ValueError):
            relation.add(other.tuple(1))

    def test_select_and_values(self, link_schema):
        relation = Relation(
            link_schema,
            [link_schema.tuple("A", "B", 1), link_schema.tuple("A", "C", 5)],
        )
        cheap = relation.select(lambda t: t["cost"] < 2)
        assert len(cheap) == 1
        assert relation.values("dst") == {"B", "C"}

    def test_tuples_snapshot_deterministic(self, link_schema):
        relation = Relation(
            link_schema,
            [link_schema.tuple("B", "C", 1), link_schema.tuple("A", "B", 1)],
        )
        assert relation.tuples() == relation.tuples()

    def test_as_value_set(self, link_schema, link):
        relation = Relation(link_schema, [link])
        assert relation.as_value_set() == {("A", "B", 1.0)}


class TestPartitionedRelation:
    def test_partitioning_by_first_attribute(self, link_schema):
        partitioned = PartitionedRelation(link_schema, node_count=4)
        t1 = link_schema.tuple("A", "B", 1)
        t2 = link_schema.tuple("A", "C", 1)
        partitioned.add(t1)
        partitioned.add(t2)
        assert partitioned.node_for(t1) == partitioned.node_for(t2)
        assert len(partitioned) == 2

    def test_contains_and_discard(self, link_schema, link):
        partitioned = PartitionedRelation(link_schema, node_count=3)
        partitioned.add(link)
        assert link in partitioned
        assert partitioned.discard(link)
        assert link not in partitioned

    def test_apply(self, link_schema, link):
        partitioned = PartitionedRelation(link_schema, node_count=2)
        assert partitioned.apply(insert(link))
        assert partitioned.apply(delete(link))

    def test_partition_sizes_sum(self, link_schema):
        partitioned = PartitionedRelation(link_schema, node_count=5)
        for i in range(20):
            partitioned.add(link_schema.tuple(f"n{i}", "X", 1))
        assert sum(partitioned.partition_sizes()) == 20

    def test_invalid_node_count(self, link_schema):
        with pytest.raises(ValueError):
            PartitionedRelation(link_schema, node_count=0)

    def test_custom_placement(self, link_schema, link):
        partitioned = PartitionedRelation(link_schema, node_count=3, placement=lambda t: 2)
        partitioned.add(link)
        assert len(partitioned.partition(2)) == 1

    def test_stable_hash_deterministic(self):
        assert stable_hash("A") == stable_hash("A")
        assert stable_hash("A") != stable_hash("B")


class TestUpdateStream:
    def test_append_and_len(self, link_schema, link):
        stream = UpdateStream()
        stream.insert(link, timestamp=1.0)
        stream.delete(link, timestamp=2.0)
        assert len(stream) == 2
        assert stream[0].is_insert and stream[1].is_delete

    def test_filters(self, link_schema, link):
        stream = UpdateStream([insert(link), delete(link)])
        assert len(stream.insertions()) == 1
        assert len(stream.deletions()) == 1

    def test_sorted_by_time(self, link_schema):
        t1 = link_schema.tuple("A", "B", 1)
        t2 = link_schema.tuple("B", "C", 1)
        stream = UpdateStream([insert(t1, timestamp=5.0), insert(t2, timestamp=1.0)])
        ordered = stream.sorted_by_time()
        assert ordered[0].tuple == t2

    def test_split_and_concat(self, link_schema, link):
        stream = UpdateStream([insert(link, timestamp=1.0), delete(link, timestamp=9.0)])
        before, after = stream.split_at(5.0)
        assert len(before) == 1 and len(after) == 1
        assert len(before.concat(after)) == 2

    def test_net_tuples(self, link_schema):
        t1 = link_schema.tuple("A", "B", 1)
        t2 = link_schema.tuple("B", "C", 1)
        stream = UpdateStream([insert(t1), insert(t2), delete(t1)])
        assert stream.net_tuples() == {t2}


class TestSlidingWindow:
    def test_unbounded_never_expires(self, link):
        window = SlidingWindow(None)
        assert window.observe(insert(link, timestamp=0.0)) == []
        assert window.expire(1e9) == []

    def test_expiry_after_size(self, link):
        window = SlidingWindow(10.0)
        window.observe(insert(link, timestamp=0.0))
        assert window.expire(5.0) == []
        expired = window.expire(10.0)
        assert len(expired) == 1
        assert expired[0].tuple == link

    def test_observe_triggers_expiry_of_older_tuples(self, link_schema):
        window = SlidingWindow(5.0)
        old = link_schema.tuple("A", "B", 1)
        new = link_schema.tuple("B", "C", 1)
        window.observe(insert(old, timestamp=0.0))
        expired = window.observe(insert(new, timestamp=50.0))
        assert [e.tuple for e in expired] == [old]
        assert new in window

    def test_explicit_delete_removes_bookkeeping(self, link):
        window = SlidingWindow(5.0)
        window.observe(insert(link, timestamp=0.0))
        window.observe(delete(link, timestamp=1.0))
        assert window.expire(100.0) == []

    def test_reinsertion_restarts_lifetime(self, link):
        window = SlidingWindow(5.0)
        window.observe(insert(link, timestamp=0.0))
        window.observe(insert(link, timestamp=4.0))
        assert window.expire(5.0) == []
        expired = window.expire(9.0)
        assert len(expired) == 1

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            SlidingWindow(0)

    def test_state_bytes(self, link):
        window = SlidingWindow(5.0)
        window.observe(insert(link, timestamp=0.0))
        assert window.state_bytes() > 0
        assert len(window) == 1
