"""Unit tests for per-node runtime internals (provenance variables, purge handling).

These complement the end-to-end integration tests with direct checks of the
node-level mechanisms: versioned base-tuple variables, tombstone filtering of
stale in-flight annotations, and the broadcast purge traffic shape.
"""

import pytest

from repro.engine.executor import DistributedViewExecutor
from repro.engine.runtime import PORT_PURGE, PORT_VIEW
from repro.engine.strategy import ExecutionStrategy
from repro.net.partition import HashPartitioner
from repro.queries import build_executor, link, reachability_plan, reachable


def make_executor(strategy=None, nodes=3):
    partitioner = HashPartitioner.identity(3, {"A": 0, "B": 1, "C": 2})
    return build_executor(
        reachability_plan(),
        strategy or ExecutionStrategy.absorption_lazy(),
        node_count=nodes,
        partitioner=partitioner,
    )


class TestVersionedBaseVariables:
    def test_reinsertion_after_deletion_gets_fresh_variable(self):
        executor = make_executor()
        executor.insert_edges([link("A", "B")])
        executor.delete_edges([link("A", "B")])
        assert executor.view_values() == set()
        executor.insert_edges([link("A", "B")])
        assert executor.view_values() == {("A", "B")}
        node_a = executor.nodes[0]
        annotation = node_a.fixpoint.annotation_of(reachable("A", "B"))
        # The surviving annotation references version 1 of the link, not version 0.
        names = {name for name in annotation.support_names()}
        assert (link("A", "B").key, 1) in names
        assert (link("A", "B").key, 0) not in names

    def test_repeated_churn_remains_correct(self):
        executor = make_executor()
        for _ in range(3):
            executor.insert_edges([link("A", "B"), link("B", "C")])
            executor.delete_edges([link("A", "B")])
            assert executor.view_values() == {("B", "C")}
            executor.delete_edges([link("B", "C")])
            assert executor.view_values() == set()


class TestPurgeHandling:
    def test_purge_broadcast_reaches_every_other_node(self):
        executor = make_executor()
        executor.insert_edges([link("A", "B"), link("B", "C"), link("C", "A")])
        before = executor.network.stats
        executor.delete_edges([link("A", "B")])
        stats = executor.network.stats
        # One purge message per peer node (2), plus any alternate-derivation traffic.
        assert stats.messages_by_port.get(PORT_PURGE, 0) >= executor.network.node_count - 1

    def test_tombstones_filter_stale_annotations(self):
        executor = make_executor()
        executor.insert_edges([link("A", "B")])
        node_b = executor.nodes[1]
        deleted_variable = (link("A", "B").key, 0)
        node_b._deleted_base_keys.add(deleted_variable)
        from repro.data.update import insert

        stale = insert(
            reachable("A", "B"),
            provenance=executor.store.base_annotation(deleted_variable),
        )
        assert node_b._filter_stale(stale) is None
        fresh = insert(
            reachable("A", "C"),
            provenance=executor.store.base_annotation((link("A", "C").key, 0)),
        )
        assert node_b._filter_stale(fresh) is fresh

    def test_state_accounting_covers_all_operators(self):
        executor = make_executor()
        executor.insert_edges([link("A", "B"), link("B", "C")])
        for node in executor.nodes:
            assert node.state_bytes() == (
                node.join.state_bytes() + node.fixpoint.state_bytes() + node.ship.state_bytes()
            )
        assert executor.state_bytes() == sum(n.state_bytes() for n in executor.nodes)
        assert set(executor.per_node_state_bytes()) == {0, 1, 2}


class TestExecutorValidation:
    def test_partitioner_is_the_source_of_truth_for_node_count(self):
        # A supplied partitioner wins over the (redundant) node_count argument:
        # the cluster is sized to what the partitioner can actually address.
        executor = DistributedViewExecutor(
            reachability_plan(),
            ExecutionStrategy.dred(),
            node_count=4,
            partitioner=HashPartitioner(3),
        )
        assert executor.network.node_count == 3
        assert len(executor.nodes) == 3

    def test_unknown_port_rejected(self):
        executor = make_executor()
        node = executor.nodes[0]
        from repro.data.update import insert

        with pytest.raises(ValueError):
            node.handle("bogus-port", [insert(link("A", "B"))], now=0.0)

    def test_view_at_and_repr(self):
        executor = make_executor()
        executor.insert_edges([link("A", "B")])
        assert executor.view_at(0) == {reachable("A", "B")}
        assert "Absorption Lazy" in repr(executor)

    def test_operator_stats_counters(self):
        executor = make_executor()
        executor.insert_edges([link("A", "B"), link("B", "C")])
        stats = executor.nodes[1].operator_stats()
        assert stats["fixpoint"].updates_processed > 0
        assert stats["fixpoint"].insertions_seen >= stats["fixpoint"].deletions_seen
