"""Unit + property tests for the columnar routing layer.

The contract under test: bulk owner resolution (``nodes_for_many``) agrees
with the scalar ``node_for`` path for every partitioner implementation, across
placement mutations (epochs, weights); the PlacementMap's key->owner cache
invalidates wholesale on an epoch change; and a batch routed through
:class:`~repro.engine.routing.BatchRouter` is grouped bit-identically to the
historical per-update ``node_for`` + ``defaultdict`` walk, for every port,
under both a static modulo partitioner and an elastic placement.
"""

from collections import defaultdict

import pytest
from hypothesis import given, settings, strategies as st

from repro.data.update import delete, insert
from repro.engine.routing import (
    PORT_BASE,
    PORT_EDGE,
    PORT_SEED,
    PORT_VIEW,
    BatchRouter,
    RoutingStats,
    group_updates,
)
from repro.net.partition import HashPartitioner
from repro.placement.map import PlacementMap
from repro.placement.ring import ConsistentHashRing
from repro.queries import link, reachability_plan

key_strategy = st.one_of(
    st.text(max_size=8),
    st.integers(min_value=-1000, max_value=1000),
    st.tuples(st.text(max_size=4), st.integers(min_value=0, max_value=9)),
)

NODES = ["n0", "n1", "n2", "n3", "n4", "n5"]
pair_strategy = st.tuples(st.sampled_from(NODES), st.sampled_from(NODES)).filter(
    lambda pair: pair[0] != pair[1]
)


class TestBulkLookupAgreement:
    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(key_strategy, max_size=40),
        st.integers(min_value=1, max_value=9),
    )
    def test_hash_partitioner_bulk_matches_scalar(self, keys, node_count):
        partitioner = HashPartitioner(node_count)
        assert partitioner.nodes_for_many(keys) == [partitioner.node_for(k) for k in keys]
        # A second pass answers from the memo and must agree too.
        assert partitioner.nodes_for_many(keys) == [partitioner.node_for(k) for k in keys]

    def test_hash_partitioner_bulk_respects_overrides_and_assign_epoch(self):
        partitioner = HashPartitioner.identity(3, {"A": 0, "B": 1})
        assert partitioner.nodes_for_many(["A", "B"]) == [0, 1]
        epoch = partitioner.epoch
        partitioner.assign("C", 2)
        assert partitioner.epoch == epoch + 1  # owner caches above must drop
        assert partitioner.nodes_for_many(["A", "B", "C"]) == [0, 1, 2]

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(key_strategy, max_size=30),
        st.lists(
            st.sampled_from(["add", "remove", "reweigh"]), max_size=4
        ),
        st.randoms(use_true_random=False),
    )
    def test_ring_bulk_matches_scalar_across_mutations(self, keys, mutations, rng):
        ring = ConsistentHashRing(range(3), virtual_nodes=8)
        assert ring.nodes_for_many(keys) == [ring.node_for(k) for k in keys]
        next_node = 3
        for mutation in mutations:
            members = list(ring.nodes)
            if mutation == "add":
                ring.add_node(next_node, weight=rng.choice([4, 8, 16]))
                next_node += 1
            elif mutation == "remove" and len(members) > 1:
                ring.remove_node(rng.choice(members))
            elif mutation == "reweigh":
                ring.set_weight(rng.choice(members), rng.choice([2, 8, 24]))
            assert ring.nodes_for_many(keys) == [ring.node_for(k) for k in keys]

    def test_ring_bulk_respects_overrides(self):
        ring = ConsistentHashRing(range(4), overrides={"pinned": 3})
        owners = ring.nodes_for_many(["pinned", "free"])
        assert owners[0] == 3
        assert owners[1] == ring.node_for("free")


class TestPlacementMapOwnerCache:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(key_strategy, max_size=30))
    def test_bulk_matches_wrapped_partitioner(self, keys):
        placement = PlacementMap(ConsistentHashRing(range(4), virtual_nodes=8))
        ring = placement.partitioner
        assert placement.nodes_for_many(keys) == [ring.node_for(k) for k in keys]

    def test_cache_hits_are_counted_and_correct(self):
        placement = PlacementMap(ConsistentHashRing(range(4), virtual_nodes=8))
        keys = [f"key-{i}" for i in range(20)]
        first = placement.nodes_for_many(keys)
        assert placement.lookup_cache_hits == 0
        second = placement.nodes_for_many(keys)
        assert second == first
        assert placement.lookup_cache_hits == len(keys)
        assert placement.bulk_lookups == 2
        assert placement.keys_routed == 2 * len(keys)

    def test_cache_invalidates_on_placement_epoch_change(self):
        placement = PlacementMap(ConsistentHashRing(range(2), virtual_nodes=16))
        keys = [f"key-{i}" for i in range(64)]
        before = placement.nodes_for_many(keys)
        placement.add_node(2)
        after = placement.nodes_for_many(keys)
        fresh = [placement.partitioner.node_for(k) for k in keys]
        assert after == fresh
        # Growing a 2-node ring by one must re-home some keys; if the cache
        # survived the epoch bump these would all still show the old owners.
        assert any(a != b for a, b in zip(after, before))
        assert all(owner in (0, 1) for owner in before)
        assert 2 in set(after)

    def test_scalar_node_for_also_uses_and_refreshes_the_cache(self):
        placement = PlacementMap(ConsistentHashRing(range(2), virtual_nodes=16))
        keys = [f"key-{i}" for i in range(64)]
        scalar_before = [placement.node_for(k) for k in keys]
        placement.set_weights({0: 48, 1: 4})
        scalar_after = [placement.node_for(k) for k in keys]
        fresh = [placement.partitioner.node_for(k) for k in keys]
        assert scalar_after == fresh
        assert scalar_after != scalar_before  # the reweigh moved keys


class TestGroupUpdates:
    def test_empty(self):
        assert group_updates([], []) == {}

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=4), max_size=30))
    def test_matches_defaultdict_reference(self, owners):
        updates = list(range(len(owners)))  # payload identity is all that matters
        reference = defaultdict(list)
        for update, owner in zip(updates, owners):
            reference[owner].append(update)
        grouped = group_updates(updates, owners)
        assert list(grouped.items()) == list(reference.items())  # order too


def _partitioners():
    ring = ConsistentHashRing(range(4), virtual_nodes=8)
    return [
        pytest.param(HashPartitioner(4), id="static"),
        pytest.param(PlacementMap(ring), id="elastic"),
    ]


class TestBatchRouter:
    @pytest.fixture
    def plan(self):
        return reachability_plan()

    def _reference_key(self, plan, port, tuple_):
        # The pre-refactor per-update key selection, spelled out directly.
        if port == PORT_EDGE:
            return plan.edge_join_value(tuple_)
        if port == PORT_BASE:
            return tuple_.partition_value
        return plan.result_partition_value(tuple_)

    @pytest.mark.parametrize("partitioner", _partitioners())
    @pytest.mark.parametrize("port", [PORT_BASE, PORT_EDGE, PORT_SEED, PORT_VIEW])
    def test_grouping_bit_identical_to_per_update_path(self, plan, partitioner, port):
        router = BatchRouter(0, plan, partitioner, RoutingStats())
        updates = [
            insert(link(a, b)) if (i % 3) else delete(link(a, b))
            for i, (a, b) in enumerate(
                (a, b) for a in NODES for b in NODES if a != b
            )
        ]
        reference = defaultdict(list)
        for update in updates:
            owner = partitioner.node_for(self._reference_key(plan, port, update.tuple))
            reference[owner].append(update)
        grouped = router.group(port, updates)
        assert list(grouped.items()) == list(reference.items())

    @pytest.mark.parametrize("partitioner", _partitioners())
    def test_owners_survive_epoch_change(self, plan, partitioner):
        router = BatchRouter(0, plan, partitioner, RoutingStats())
        updates = [insert(link(a, b)) for a, b in [("n0", "n1"), ("n2", "n3"), ("n4", "n5")]]
        router.owners_of(PORT_VIEW, updates)  # warm any caches
        if isinstance(partitioner, PlacementMap):
            partitioner.add_node(4)
        else:
            partitioner.assign(plan.result_partition_value(updates[0].tuple), 3)
        expected = [
            partitioner.node_for(plan.result_partition_value(update.tuple))
            for update in updates
        ]
        assert router.owners_of(PORT_VIEW, updates) == expected

    def test_scalar_fallback_for_foreign_partitioners(self, plan):
        class Modulo:
            node_count = 3

            def node_for(self, key):
                return hash(key) % 3

        foreign = Modulo()
        router = BatchRouter(0, plan, foreign, RoutingStats())
        updates = [insert(link("n0", "n1")), insert(link("n1", "n2"))]
        assert router.owners_of(PORT_VIEW, updates) == [
            foreign.node_for(plan.result_partition_value(update.tuple))
            for update in updates
        ]

    def test_stats_snapshot_merges_partitioner_counters(self):
        stats = RoutingStats()
        stats.admission_passes = 5
        stats.record_bounce(3)
        partitioner = HashPartitioner(2)
        partitioner.nodes_for_many(["a", "b", "a"])
        snapshot = stats.snapshot(partitioner)
        assert snapshot["admission_passes"] == 5
        assert snapshot["bounced_batches"] == 1
        assert snapshot["bounced_updates"] == 3
        assert snapshot["bulk_lookups"] == 1
        assert snapshot["keys_routed"] == 3
        assert snapshot["lookup_cache_hits"] == 1
        # A partitioner without counters contributes zeroes, not a KeyError.
        bare = stats.snapshot(None)
        assert bare["bulk_lookups"] == 0
