"""Deep-provenance regression tests for the iterative BDD kernel.

The pre-iterative kernel ran ``_apply``/``_negate``/``_restrict`` as Python
recursion, one interpreter frame per Shannon-expansion step, so any
provenance chain deeper than the interpreter's recursion limit (1000 by
default) died with ``RecursionError``.  These tests drive chains of ≥5000
variables through the public operations **without touching
``sys.setrecursionlimit``** — they pass only because the kernel is iterative.
"""

import sys

import pytest

from repro.bdd import BDDManager
from repro.bdd.serialize import bdd_from_bytes, bdd_to_bytes

#: Deeper than any default recursion limit by a wide margin.
DEPTH = 5000


@pytest.fixture()
def mgr():
    return BDDManager()


def _conjunction_chain(manager, names):
    """Fold a conjunction bottom-up (each apply is O(1) work, depth grows).

    Variables are declared in list order first, so the fold prepends each
    variable *above* the accumulated chain (one new node per step) instead of
    rebuilding the chain underneath it.
    """
    variables = [manager.variable(name) for name in names]
    acc = manager.true
    for variable in reversed(variables):
        acc = variable & acc
    return acc


class TestDeepChains:
    def test_recursion_limit_untouched(self):
        # The suite must not pass because someone raised the limit.
        assert sys.getrecursionlimit() <= 10_000

    def test_deep_conjunction_apply_and_node_count(self, mgr):
        names = [f"x{i}" for i in range(DEPTH)]
        chain = _conjunction_chain(mgr, names)
        assert chain.node_count() == DEPTH
        assert chain.is_satisfiable()
        assert chain.evaluate({name: True for name in names})

    def test_deep_negate_is_involutive(self, mgr):
        names = [f"x{i}" for i in range(DEPTH)]
        chain = _conjunction_chain(mgr, names)
        negated = ~chain
        assert negated != chain
        assert ~negated == chain

    def test_deep_restrict_single_variable(self, mgr):
        names = [f"x{i}" for i in range(DEPTH)]
        chain = _conjunction_chain(mgr, names)
        # Zeroing one variable in the middle kills the whole conjunction.
        assert chain.restrict({f"x{DEPTH // 2}": False}).is_false()
        # Setting it true peels exactly one node off the chain.
        assert chain.restrict({f"x{DEPTH // 2}": True}).node_count() == DEPTH - 1

    def test_deep_apply_or_of_two_chains(self, mgr):
        evens = [f"x{i}" for i in range(0, 2 * DEPTH, 2)]
        odds = [f"x{i}" for i in range(1, 2 * DEPTH, 2)]
        # Declare in interleaved order so the chains interleave in the order.
        for i in range(2 * DEPTH):
            mgr.variable(f"x{i}")
        both = _conjunction_chain(mgr, evens) | _conjunction_chain(mgr, odds)
        assert both.is_satisfiable()
        all_true = {f"x{i}": True for i in range(2 * DEPTH)}
        assert both.evaluate(all_true)
        only_evens = dict(all_true)
        only_evens.update({name: False for name in odds})
        assert both.evaluate(only_evens)
        only_evens[evens[-1]] = False
        assert not both.evaluate(only_evens)

    def test_deep_without_and_support(self, mgr):
        names = [f"x{i}" for i in range(DEPTH)]
        chain = _conjunction_chain(mgr, names)
        assert len(chain.support()) == DEPTH
        assert chain.without([names[0]]).is_false()

    def test_deep_serialize_round_trip(self, mgr):
        names = [f"x{i}" for i in range(DEPTH)]
        chain = _conjunction_chain(mgr, names)
        data = bdd_to_bytes(chain)
        fresh = BDDManager()
        restored = bdd_from_bytes(data, fresh)
        assert restored.node_count() == DEPTH
        assert restored.evaluate({name: True for name in names})

    def test_deep_chain_survives_forced_gc(self, mgr):
        names = [f"x{i}" for i in range(DEPTH)]
        chain = _conjunction_chain(mgr, names)
        before = bdd_to_bytes(chain)
        # Build and drop a same-depth negation: DEPTH dead nodes.
        negated = ~chain
        del negated
        summary = mgr.collect(force=True)
        assert summary["compacted"]
        assert summary["reclaimed"] >= DEPTH
        assert chain.node_count() == DEPTH
        assert bdd_to_bytes(chain) == before
