"""Integration tests: equivalence of elastic and static clusters.

The elastic placement subsystem's contract (the acceptance criterion of the
subsystem): a workload interleaved with ``add_node`` / ``remove_node`` /
``rebalance`` calls — including placement changes scheduled *mid-stream*,
while update batches are in flight under the superseded epoch — converges to
exactly the same view (and, under eager shipping, exactly the same absorbed
provenance) as the same workload on a static cluster.  Nothing is lost and
nothing is duplicated: stale-epoch batches are forwarded to the current
owner, never dropped.
"""

import pytest

from repro.baselines import reachable_pairs
from repro.bdd.expr import BoolExpr
from repro.bdd.manager import BDD
from repro.placement import (
    ElasticExecutor,
    LoadAwareRebalancer,
    PlacementError,
    elastic_executor,
)
from repro.queries import build_executor, link, reachability_plan, region_plan
from repro.workloads.hotspot import generate_hotspot


def _canonical(annotation):
    """Manager-independent canonical form (minimal witness products)."""
    if isinstance(annotation, BDD):
        return BoolExpr.from_products(set(annotation.iter_products()))
    return annotation


def _annotations(executor):
    """tuple -> canonical annotation over the whole cluster (owners must be unique)."""
    captured = {}
    for node in executor.nodes:
        for tuple_ in node.fixpoint.view_tuples():
            assert tuple_ not in captured, (
                f"{tuple_} is materialised on two nodes — duplicated state"
            )
            captured[tuple_] = _canonical(node.fixpoint.annotation_of(tuple_))
    return captured


def _workload():
    workload = generate_hotspot(spokes=10, hubs=2, extra_links=20, seed=5)
    links = workload.link_tuples()
    return workload, links, links[::3]


class TestInterleavedElasticityEquivalence:
    """add/remove/rebalance between phases: bit-equivalent end state."""

    @pytest.mark.parametrize("scheme", ["Absorption Eager", "Absorption Lazy", "DRed"])
    def test_view_matches_ground_truth_under_elasticity(self, scheme):
        workload, links, deletions = _workload()
        executor = elastic_executor(reachability_plan(), scheme, node_count=4)
        third = len(links) // 3
        executor.insert_edges(links[:third])
        executor.add_node()
        executor.insert_edges(links[third : 2 * third])
        executor.remove_node(1)
        executor.insert_edges(links[2 * third :])
        assert executor.view_values() == reachable_pairs(workload.edge_pairs())
        executor.delete_edges(deletions)
        remaining = [l for l in links if l not in set(deletions)]
        assert executor.view_values() == reachable_pairs(
            (l["src"], l["dst"]) for l in remaining
        )
        stats = executor.placement_stats()
        assert stats["moved_state_bytes"] > 0
        assert stats["epoch"] == 2

    def test_provenance_identical_to_static_run_under_eager(self):
        _, links, deletions = _workload()
        elastic = elastic_executor(reachability_plan(), "Absorption Eager", node_count=4)
        static = build_executor(reachability_plan(), "Absorption Eager", node_count=4)
        half = len(links) // 2
        elastic.insert_edges(links[:half])
        elastic.add_node()
        elastic.add_node()
        elastic.insert_edges(links[half:])
        elastic.remove_node(0)
        elastic.delete_edges(deletions)
        static.insert_edges(links)
        static.delete_edges(deletions)
        assert elastic.view_values() == static.view_values()
        elastic_pv, static_pv = _annotations(elastic), _annotations(static)
        assert set(elastic_pv) == set(static_pv), "lost or phantom view tuples"
        for tuple_, annotation in elastic_pv.items():
            assert annotation == static_pv[tuple_], (
                f"absorbed provenance diverged for {tuple_}"
            )


class TestMidStreamScaling:
    """Scheduled placement changes while batches are in flight."""

    def test_stale_epoch_batches_are_forwarded_not_dropped(self):
        workload, links, deletions = _workload()
        probe = elastic_executor(reachability_plan(), "Absorption Eager", node_count=4)
        horizon = probe.insert_edges(links).convergence_time_s

        executor = elastic_executor(
            reachability_plan(), "Absorption Eager", node_count=4
        )
        executor.schedule_add_node(horizon * 0.2)
        executor.schedule_add_node(horizon * 0.5)
        executor.schedule_remove_node(2, horizon * 0.8)
        executor.insert_edges(links)
        assert executor.view_values() == reachable_pairs(workload.edge_pairs())
        stats = executor.placement_stats()
        # The scheduled changes genuinely interleaved with the stream: some
        # batches were routed under a superseded epoch and bounced onward.
        assert stats["misrouted_batches"] > 0
        assert stats["misrouted_updates"] > 0
        assert stats["epoch"] == 3

        # ... and deletions after the churn still converge exactly.
        executor.remove_node(4)
        executor.delete_edges(deletions)
        remaining = [l for l in links if l not in set(deletions)]
        assert executor.view_values() == reachable_pairs(
            (l["src"], l["dst"]) for l in remaining
        )

    def test_mid_stream_provenance_equivalence_under_eager(self):
        _, links, deletions = _workload()
        probe = elastic_executor(reachability_plan(), "Absorption Eager", node_count=4)
        horizon = probe.insert_edges(links).convergence_time_s

        elastic = elastic_executor(reachability_plan(), "Absorption Eager", node_count=4)
        elastic.schedule_add_node(horizon * 0.3)
        elastic.insert_edges(links)
        elastic.delete_edges(deletions)
        static = build_executor(reachability_plan(), "Absorption Eager", node_count=4)
        static.insert_edges(links)
        static.delete_edges(deletions)
        elastic_pv, static_pv = _annotations(elastic), _annotations(static)
        assert elastic_pv == static_pv

    def test_dred_scaling_during_deletion_phases(self):
        workload, links, deletions = _workload()
        executor = elastic_executor(reachability_plan(), "DRed", node_count=4)
        executor.insert_edges(links)
        probe_horizon = executor.network.now
        executor.schedule_add_node(probe_horizon * 1.2)
        executor.delete_edges(deletions)
        remaining = [l for l in links if l not in set(deletions)]
        assert executor.view_values() == reachable_pairs(
            (l["src"], l["dst"]) for l in remaining
        )


class TestElasticExecutorApi:
    def test_scale_out_and_back_in(self):
        workload, links, _ = _workload()
        executor = elastic_executor(reachability_plan(), "Absorption Lazy", node_count=3)
        executor.insert_edges(links)
        added = [executor.add_node() for _ in range(3)]
        assert executor.placement.node_count == 6
        for node_id in added:
            executor.remove_node(node_id)
        assert executor.placement.node_count == 3
        assert executor.view_values() == reachable_pairs(workload.edge_pairs())
        # Decommissioned nodes hold no state afterwards.
        for node_id in added:
            assert not executor.network.is_active(node_id)
            assert executor.nodes[node_id].state_bytes() == 0

    def test_rebalance_reacts_to_hotspot_skew(self):
        _, links, _ = _workload()
        executor = elastic_executor(
            reachability_plan(),
            "Absorption Lazy",
            node_count=4,
            rebalancer=LoadAwareRebalancer(imbalance_threshold=1.05),
        )
        executor.insert_edges(links)
        loads = executor.node_loads()
        assert len(loads) == 4
        report = executor.rebalance()
        if report is not None:  # the seeded hotspot skews heavily; expect a move
            assert report.moved_state_bytes > 0
            assert executor.placement.epoch == 1
        assert executor.view_values() == reachable_pairs(
            (src, dst) for src, dst in generate_hotspot(
                spokes=10, hubs=2, extra_links=20, seed=5
            ).edge_pairs()
        )

    def test_remove_validations(self):
        executor = elastic_executor(reachability_plan(), "Absorption Lazy", node_count=2)
        with pytest.raises(PlacementError):
            executor.remove_node(9)
        executor.remove_node(1)
        with pytest.raises(PlacementError):
            executor.remove_node(1)  # already decommissioned
        with pytest.raises(PlacementError):
            executor.remove_node(0)  # cannot remove the last node

    def test_aggregate_selection_plans_rejected(self):
        from repro.queries.shortest_path import AGGSEL_MULTI, shortest_path_plan

        with pytest.raises(PlacementError):
            elastic_executor(
                shortest_path_plan(aggregate_selection=AGGSEL_MULTI), "Absorption Lazy"
            )

    def test_region_plan_with_seeds_supported(self):
        # Seeds exercise the PORT_SEED ownership path (the region query's
        # base case comes from seed tuples, not edges).
        from repro.workloads.sensors import SensorField, SensorWorkload

        field = SensorField.grid(
            side_metres=30.0,
            spacing_metres=10.0,
            proximity_radius=15.0,
            seed_groups=2,
            rng_seed=3,
        )
        workload = SensorWorkload(field)
        delta = workload.trigger_many(list(field.sensor_ids))
        executor = elastic_executor(region_plan(), "Absorption Lazy", node_count=3)
        static = build_executor(region_plan(), "Absorption Lazy", node_count=3)
        half = len(delta.proximity_inserts) // 2
        executor.apply_mixed(
            edge_inserts=delta.proximity_inserts[:half],
            seed_inserts=delta.seed_inserts,
        )
        executor.add_node()
        executor.apply_mixed(edge_inserts=delta.proximity_inserts[half:])
        static.apply_mixed(
            edge_inserts=delta.proximity_inserts,
            seed_inserts=delta.seed_inserts,
        )
        assert executor.view_values() == static.view_values()


def test_harness_elastic_experiment_reports_required_metrics():
    from repro.harness.config import QUICK_CONFIG
    from repro.harness.experiments import run_elastic_scaling

    rows = run_elastic_scaling(QUICK_CONFIG)
    by_phase = {row["phase"]: row for row in rows if "phase" in row}
    assert {"static", "scale-out", "scale-in"} <= set(by_phase)
    for phase in ("scale-out", "scale-in"):
        row = by_phase[phase]
        assert row["converged"] and row["view_correct"]
        assert "moved_state_KB" in row and "misrouted_batches" in row
    assert by_phase["scale-out"]["moved_state_KB"] > 0
