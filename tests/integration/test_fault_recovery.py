"""Integration tests: processor crashes mid-workload, recovery to ground truth.

The acceptance bar for the fault subsystem: a node crashed in the middle of
an insertion stream (and, separately, a deletion stream) and recovered under
*either* policy — checkpoint+replay or provenance-purge — must leave the
maintained reachability view exactly equal to the networkx ground truth over
the live base data.
"""

import pytest

from repro.baselines.networkx_ref import reachable_pairs
from repro.fault import (
    FaultToleranceError,
    FaultTolerantExecutor,
    RecoveryPolicy,
    fault_tolerant_executor,
)
from repro.queries.reachability import reachability_plan
from repro.workloads.churn import generate_churn
from repro.workloads.topology import TransitStubConfig, generate_topology
from repro.workloads.updates import deletion_sample

POLICIES = ("checkpoint-replay", "provenance-purge")
NODE_COUNT = 6
VICTIM = 2


@pytest.fixture(scope="module")
def workload():
    topology = generate_topology(
        TransitStubConfig(nodes_per_stub=2, stubs_per_transit=2, seed=7)
    )
    return topology.link_tuples()


@pytest.fixture(scope="module")
def insertion_horizon(workload):
    """Convergence time of an uninterrupted insertion run (sizes the crash window)."""
    executor = fault_tolerant_executor(
        reachability_plan(), "Absorption Lazy", node_count=NODE_COUNT
    )
    return executor.insert_edges(workload).convergence_time_s


def _truth(links):
    return reachable_pairs((link["src"], link["dst"]) for link in links)


@pytest.mark.parametrize("policy", POLICIES)
def test_crash_mid_insertion_stream_recovers_to_ground_truth(
    policy, workload, insertion_horizon
):
    executor = fault_tolerant_executor(
        reachability_plan(),
        "Absorption Lazy",
        recovery_policy=policy,
        checkpoint_interval=10,
        node_count=NODE_COUNT,
    )
    executor.schedule_crash(VICTIM, at_time=insertion_horizon * 0.3)
    executor.schedule_recovery(VICTIM, at_time=insertion_horizon * 0.6)
    executor.insert_edges(workload)

    assert executor.recovery.crash_count == 1
    assert executor.recovery.recovery_count == 1
    assert executor.view_values() == _truth(workload)


@pytest.mark.parametrize("policy", POLICIES)
def test_crash_mid_deletion_stream_recovers_to_ground_truth(policy, workload):
    deletions = deletion_sample(workload, 0.3, seed=7)
    live = [link for link in workload if link not in set(deletions)]

    # Size the crash window from an uninterrupted twin of the deletion phase.
    twin = fault_tolerant_executor(
        reachability_plan(), "Absorption Lazy", node_count=NODE_COUNT
    )
    twin.insert_edges(workload)
    horizon = twin.delete_edges(deletions).convergence_time_s

    executor = fault_tolerant_executor(
        reachability_plan(),
        "Absorption Lazy",
        recovery_policy=policy,
        checkpoint_interval=10,
        node_count=NODE_COUNT,
    )
    executor.insert_edges(workload)
    start = executor.network.now
    executor.schedule_crash(VICTIM, at_time=start + horizon * 0.3)
    executor.schedule_recovery(VICTIM, at_time=start + horizon * 0.7)
    executor.delete_edges(deletions)

    assert executor.recovery.recovery_count == 1
    assert executor.view_values() == _truth(live)


@pytest.mark.parametrize("policy", POLICIES)
def test_insertions_arriving_during_downtime_are_not_lost(policy, workload):
    """Base data injected while its owner is down must appear after recovery."""
    split = len(workload) // 2
    executor = fault_tolerant_executor(
        reachability_plan(),
        "Absorption Lazy",
        recovery_policy=policy,
        checkpoint_interval=10,
        node_count=NODE_COUNT,
    )
    executor.insert_edges(workload[:split])
    # Crash immediately, inject the second half while the victim is down,
    # recover well after every insertion has been routed or held.
    start = executor.network.now
    executor.schedule_crash(VICTIM, at_time=start)
    executor.schedule_recovery(VICTIM, at_time=start + 10.0)
    executor.insert_edges(workload[split:])

    assert executor.view_values() == _truth(workload)


def test_churn_scenario_with_multiple_cycles(workload, insertion_horizon):
    """A generated two-cycle churn schedule still converges to the truth."""
    executor = fault_tolerant_executor(
        reachability_plan(),
        "Absorption Lazy",
        recovery_policy="checkpoint-replay",
        checkpoint_interval=10,
        node_count=NODE_COUNT,
    )
    scenario = generate_churn(NODE_COUNT, cycles=2, downtime=0.25, seed=11)
    scenario.scaled(insertion_horizon).apply(executor)
    executor.insert_edges(workload)

    assert executor.recovery.recovery_count == 2
    assert executor.view_values() == _truth(workload)


def test_recovery_is_noop_on_quiesced_system(workload):
    """Crashing and recovering after convergence must not disturb the view."""
    for policy in POLICIES:
        executor = fault_tolerant_executor(
            reachability_plan(),
            "Absorption Lazy",
            recovery_policy=policy,
            checkpoint_interval=10,
            node_count=NODE_COUNT,
        )
        executor.insert_edges(workload)
        start = executor.network.now
        executor.schedule_crash(VICTIM, at_time=start + 1.0)
        executor.schedule_recovery(VICTIM, at_time=start + 2.0)
        executor.network.run()
        assert executor.view_values() == _truth(workload)


def test_purge_policy_rejects_set_semantics():
    """DRed cannot absorb a node loss; the configuration is refused up front."""
    from repro.engine.strategy import ExecutionStrategy

    with pytest.raises(FaultToleranceError):
        FaultTolerantExecutor(
            reachability_plan(),
            ExecutionStrategy.dred(),
            recovery_policy=RecoveryPolicy.PROVENANCE_PURGE,
            node_count=4,
        )
