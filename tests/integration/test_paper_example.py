"""The paper's worked example (Figures 2, 3 and 5).

Three nodes A, B, C with links ``link(A,B)``, ``link(B,C)``, ``link(C,A)``,
``link(C,B)`` (Figure 3).  The fully connected reachable view contains all
nine ordered pairs.  Deleting ``link(C,B)`` (base variable ``p4``):

* under **absorption provenance** the view is unchanged — every pair remains
  derivable through the surviving links (e.g. reachable(C,B) has provenance
  ``p4 OR (p1 AND p3)``), and the deletion costs only a broadcast purge;
* under **DRed** the over-deletion phase empties the view and the
  re-derivation phase rebuilds it, with traffic comparable to computing the
  view from scratch.
"""

import pytest

from repro.engine.strategy import ExecutionStrategy
from repro.net.partition import HashPartitioner
from repro.queries import build_executor, link, reachability_plan

NODES = ["A", "B", "C"]
LINKS = [link("A", "B"), link("B", "C"), link("C", "A"), link("C", "B")]
ALL_PAIRS = {(x, y) for x in NODES for y in NODES}


def make_executor(strategy):
    """Three processor nodes, one per network node, as in the worked example."""
    partitioner = HashPartitioner.identity(3, {"A": 0, "B": 1, "C": 2})
    return build_executor(
        reachability_plan(),
        strategy,
        node_count=3,
        partitioner=partitioner,
        experiment="paper-example",
    )


@pytest.mark.parametrize(
    "strategy",
    [
        ExecutionStrategy.dred(),
        ExecutionStrategy.absorption_eager(),
        ExecutionStrategy.absorption_lazy(),
        ExecutionStrategy.relative_eager(),
        ExecutionStrategy.relative_lazy(),
    ],
    ids=lambda s: s.label,
)
class TestInitialComputation:
    def test_full_transitive_closure(self, strategy):
        executor = make_executor(strategy)
        executor.insert_edges(LINKS)
        assert executor.view_values() == ALL_PAIRS

    def test_view_partitioned_by_source(self, strategy):
        executor = make_executor(strategy)
        executor.insert_edges(LINKS)
        for node_id, name in enumerate(NODES):
            partition = {t.values for t in executor.view_at(node_id)}
            assert partition == {(name, other) for other in NODES}


@pytest.mark.parametrize(
    "strategy",
    [
        ExecutionStrategy.absorption_eager(),
        ExecutionStrategy.absorption_lazy(),
        ExecutionStrategy.relative_lazy(),
        ExecutionStrategy.dred(),
    ],
    ids=lambda s: s.label,
)
class TestDeletionOfLinkCB:
    def test_view_unchanged_after_deletion(self, strategy):
        """A, B and C remain mutually reachable without link(C,B) (Figure 3)."""
        executor = make_executor(strategy)
        executor.insert_edges(LINKS)
        executor.delete_edges([link("C", "B")])
        assert executor.view_values() == ALL_PAIRS

    def test_second_deletion_disconnects(self, strategy):
        """Deleting link(C,A) as well leaves C unable to reach anything."""
        executor = make_executor(strategy)
        executor.insert_edges(LINKS)
        executor.delete_edges([link("C", "B")])
        executor.delete_edges([link("C", "A")])
        expected = {("A", "B"), ("B", "C"), ("A", "C")}
        assert executor.view_values() == expected


class TestAbsorptionProvenanceDetails:
    def test_reachable_cb_provenance_matches_figure_2(self):
        """reachable(C,B) is annotated p4 OR (p1 AND p3) at fixpoint (Figure 2, step 3)."""
        executor = make_executor(ExecutionStrategy.absorption_eager())
        executor.insert_edges(LINKS)
        store = executor.store
        node_c = executor.nodes[2]
        from repro.queries import reachable

        annotation = node_c.fixpoint.annotation_of(reachable("C", "B"))
        assert annotation is not None
        # Provenance variables are (base tuple key, incarnation version) pairs.
        expected = store.annotation_from_products(
            [
                [(link("C", "B").key, 0)],
                [(link("A", "B").key, 0), (link("C", "A").key, 0)],
            ]
        )
        assert store.equals(annotation, expected)

    def test_deletion_keeps_tuple_via_alternative_derivation(self):
        executor = make_executor(ExecutionStrategy.absorption_eager())
        executor.insert_edges(LINKS)
        executor.delete_edges([link("C", "B")])
        from repro.queries import reachable

        node_c = executor.nodes[2]
        annotation = node_c.fixpoint.annotation_of(reachable("C", "B"))
        assert annotation is not None
        assert not executor.store.is_zero(annotation)
        # After the deletion the only derivation left goes through link(C,A), link(A,B).
        assert executor.store.equals(
            annotation,
            executor.store.annotation_from_products(
                [[(link("A", "B").key, 0), (link("C", "A").key, 0)]]
            ),
        )

    def test_deletion_is_cheap_compared_to_dred(self):
        """Absorption handles the deletion with far less traffic than DRed (Section 3.2)."""
        absorption = make_executor(ExecutionStrategy.absorption_lazy())
        absorption.insert_edges(LINKS)
        absorption_phase = absorption.delete_edges([link("C", "B")])

        dred = make_executor(ExecutionStrategy.dred())
        dred.insert_edges(LINKS)
        dred_phase = dred.delete_edges([link("C", "B")])

        assert absorption.view_values() == dred.view_values() == ALL_PAIRS
        assert absorption_phase.updates_shipped < dred_phase.updates_shipped
        assert absorption_phase.messages < dred_phase.messages
        # At this 3-node scale the absolute byte counts are within the same
        # ballpark (provenance annotations add per-update overhead); the
        # order-of-magnitude bandwidth gap appears at realistic topology sizes
        # and is asserted in tests/integration/test_engine_correctness.py and
        # exercised by the Figure 8 benchmark.

    def test_dred_deletion_costs_about_as_much_as_recomputation(self):
        dred = make_executor(ExecutionStrategy.dred())
        initial = dred.insert_edges(LINKS)
        deletion = dred.delete_edges([link("C", "B")])
        # DRed's deletion round trips the bulk of the original computation.
        assert deletion.updates_shipped >= 0.5 * initial.updates_shipped
