"""End-to-end correctness of the distributed engine against ground truth.

Every maintenance strategy must produce exactly the same view as a direct
(networkx / centralized) computation over the live base data, after insertions
and after deletions, for all three example queries.
"""

import pytest

from repro.baselines import CentralizedRecursiveEvaluator, reachable_pairs
from repro.baselines.networkx_ref import cheapest_path_costs, connected_regions
from repro.engine.strategy import ExecutionStrategy
from repro.queries import (
    build_executor,
    cheapest_paths,
    min_costs,
    reachability_plan,
    region_plan,
    region_sizes,
    shortest_path_plan,
)
from repro.queries.shortest_path import AGGSEL_MULTI, AGGSEL_NONE, AGGSEL_SINGLE
from repro.workloads import SensorField, SensorWorkload, TransitStubConfig, generate_topology
from repro.workloads.updates import deletion_sample

STRATEGIES = [
    ExecutionStrategy.dred(),
    ExecutionStrategy.absorption_eager(),
    ExecutionStrategy.absorption_lazy(),
    ExecutionStrategy.relative_lazy(),
]

SMALL_TOPOLOGY = generate_topology(
    TransitStubConfig(nodes_per_stub=2, stubs_per_transit=2, dense=True, seed=5)
)


@pytest.mark.parametrize("strategy", STRATEGIES, ids=lambda s: s.label)
class TestReachabilityCorrectness:
    def test_insertions_match_ground_truth(self, strategy):
        links = SMALL_TOPOLOGY.link_tuples()
        executor = build_executor(reachability_plan(), strategy, node_count=8)
        executor.insert_edges(links)
        truth = reachable_pairs(SMALL_TOPOLOGY.edge_pairs())
        assert executor.view_values() == truth

    def test_deletions_match_ground_truth(self, strategy):
        links = SMALL_TOPOLOGY.link_tuples()
        deletions = deletion_sample(links, 0.3, seed=2)
        executor = build_executor(reachability_plan(), strategy, node_count=8)
        executor.insert_edges(links)
        executor.delete_edges(deletions)
        live = [l for l in links if l not in set(deletions)]
        truth = reachable_pairs([(l["src"], l["dst"]) for l in live])
        assert executor.view_values() == truth

    def test_interleaved_inserts_and_deletes(self, strategy):
        links = SMALL_TOPOLOGY.link_tuples()
        half = links[: len(links) // 2]
        rest = links[len(links) // 2 :]
        deletions = deletion_sample(half, 0.5, seed=3)
        executor = build_executor(reachability_plan(), strategy, node_count=8)
        executor.insert_edges(half)
        executor.delete_edges(deletions)
        executor.insert_edges(rest)
        live = [l for l in links if l not in set(deletions)]
        truth = reachable_pairs([(l["src"], l["dst"]) for l in live])
        assert executor.view_values() == truth

    def test_matches_centralized_evaluator(self, strategy):
        links = SMALL_TOPOLOGY.link_tuples()
        executor = build_executor(reachability_plan(), strategy, node_count=8)
        executor.insert_edges(links)
        central = CentralizedRecursiveEvaluator(reachability_plan())
        assert executor.view_values() == central.evaluate_values(links)


@pytest.mark.parametrize(
    "strategy",
    [ExecutionStrategy.dred(), ExecutionStrategy.absorption_lazy()],
    ids=lambda s: s.label,
)
class TestRegionCorrectness:
    def _run(self, strategy, trigger_count, untrigger_count):
        field = SensorField.grid(
            side_metres=40, spacing_metres=10, proximity_radius=15, seed_groups=3, rng_seed=4
        )
        workload = SensorWorkload(field)
        executor = build_executor(region_plan(), strategy, node_count=6)
        order = list(field.seed_sensors) + [
            s for s in field.sensor_ids if not field.is_seed(s)
        ]
        delta = workload.trigger_many(order[:trigger_count])
        executor.apply_mixed(
            edge_inserts=delta.proximity_inserts, seed_inserts=delta.seed_inserts
        )
        if untrigger_count:
            delta = workload.untrigger_many(order[:untrigger_count])
            executor.apply_mixed(
                edge_deletes=delta.proximity_deletes, seed_deletes=delta.seed_deletes
            )
        return executor, workload

    def test_triggered_regions_match_ground_truth(self, strategy):
        executor, workload = self._run(strategy, trigger_count=12, untrigger_count=0)
        expected = workload.expected_regions()
        view = executor.view()
        actual = {}
        for membership in view:
            actual.setdefault(membership["region"], set()).add(membership["sensor"])
        assert actual == expected

    def test_untriggering_shrinks_regions_correctly(self, strategy):
        executor, workload = self._run(strategy, trigger_count=12, untrigger_count=5)
        expected = workload.expected_regions()
        view = executor.view()
        actual = {}
        for membership in view:
            actual.setdefault(membership["region"], set()).add(membership["sensor"])
        assert actual == expected

    def test_region_sizes_aggregate(self, strategy):
        executor, workload = self._run(strategy, trigger_count=10, untrigger_count=0)
        sizes = region_sizes(executor.view())
        expected = {region: len(members) for region, members in workload.expected_regions().items()}
        assert sizes == expected


class TestShortestPathCorrectness:
    @pytest.mark.parametrize("mode", [AGGSEL_MULTI, AGGSEL_SINGLE])
    def test_min_costs_match_dijkstra(self, mode):
        topology = generate_topology(
            TransitStubConfig(nodes_per_stub=2, stubs_per_transit=2, dense=False, seed=9)
        )
        links = topology.cost_link_tuples()
        executor = build_executor(
            shortest_path_plan(aggregate_selection=mode), "Absorption Lazy", node_count=6
        )
        executor.insert_edges(links)
        weighted = [(l["src"], l["dst"], l["cost"]) for l in links]
        truth = cheapest_path_costs(weighted)
        computed = min_costs(executor.view())
        for pair, cost in computed.items():
            if pair[0] == pair[1]:
                continue  # the path view keeps simple paths only
            assert cost == pytest.approx(truth[pair])
        # Every reachable (non-self) pair must have a cheapest path in the view.
        missing = {
            pair for pair in truth if pair[0] != pair[1] and pair not in computed
        }
        assert not missing

    def test_aggregate_selection_prunes_but_preserves_minima(self):
        topology = generate_topology(
            TransitStubConfig(nodes_per_stub=2, stubs_per_transit=2, dense=True, seed=9)
        )
        links = topology.cost_link_tuples()
        with_aggsel = build_executor(
            shortest_path_plan(aggregate_selection=AGGSEL_MULTI), "Absorption Lazy", node_count=6
        )
        phase_with = with_aggsel.insert_edges(links)
        without = build_executor(
            shortest_path_plan(aggregate_selection=AGGSEL_NONE, max_hops=4),
            "Absorption Lazy",
            node_count=6,
        )
        phase_without = without.insert_edges(links)
        assert phase_with.updates_shipped < phase_without.updates_shipped
        # Minima agree on pairs reachable within the hop bound of the unpruned run.
        pruned_minima = min_costs(with_aggsel.view())
        unpruned_minima = min_costs(without.view())
        for pair, cost in unpruned_minima.items():
            assert pruned_minima[pair] <= cost + 1e-9

    def test_cheapest_paths_are_consistent_with_min_costs(self):
        topology = generate_topology(
            TransitStubConfig(nodes_per_stub=2, stubs_per_transit=2, dense=False, seed=11)
        )
        links = topology.cost_link_tuples()
        executor = build_executor(shortest_path_plan(), "Absorption Lazy", node_count=6)
        executor.insert_edges(links)
        view = executor.view()
        best = min_costs(view)
        for path in cheapest_paths(view):
            assert path["cost"] == best[(path["src"], path["dst"])]


class TestDeletionCostComparison:
    def test_absorption_beats_dred_on_deletion_traffic_at_scale(self):
        topology = generate_topology(TransitStubConfig(nodes_per_stub=2, dense=True, seed=7))
        links = topology.link_tuples()
        deletions = deletion_sample(links, 0.2, seed=7)

        def deletion_phase(label):
            executor = build_executor(reachability_plan(), label, node_count=12)
            executor.insert_edges(links)
            return executor.delete_edges(deletions)

        dred = deletion_phase("DRed")
        lazy = deletion_phase("Absorption Lazy")
        assert lazy.communication_mb < dred.communication_mb
        assert lazy.convergence_time_s < dred.convergence_time_s
