"""Integration tests: the chaos plane's parity gate and supervised recovery.

The acceptance bar for the chaos plane: a run with seeded link faults, crash
storms, doomed recoveries, scaling churn or real worker SIGKILLs must converge
**bit-identical** to its fault-free reference — and when recovery is doomed
past the supervisor's budget, the executor must degrade to stale-tagged view
service instead of raising or respawning forever.

Double faults (satellite coverage): a node crashing *again* during its
recovery replay on the simulator backend, and a worker SIGKILLed *again*
during its WAL-replay respawn on the process backend, must both stay within
the retry budget and still pass the parity gate.
"""

import pytest

from repro.chaos import (
    ChaosPlan,
    CrashStormSpec,
    RecoveryFaultSpec,
    RetryPolicy,
    WorkerKillSpec,
)
from repro.chaos.executor import StalenessInfo, chaos_executor
from repro.chaos.parity import (
    ParityError,
    apply_workload,
    assert_parity,
    schedule_chaos,
    verify_process_parity,
    verify_sim_parity,
)
from repro.net.simulator import SimulationError
from repro.queries import build_executor, reachability_plan
from repro.workloads.chaos import generate_chaos_workload

NODE_COUNT = 6
SEED = 11


@pytest.fixture(scope="module")
def workload():
    return generate_chaos_workload(links=30, seed=SEED)


@pytest.mark.parametrize("scheme", ["Absorption Eager", "Absorption Lazy"])
def test_link_chaos_parity_per_scheme(scheme, workload):
    report = assert_parity(
        verify_sim_parity(
            reachability_plan(),
            scheme,
            ChaosPlan.profile("link", SEED),
            workload,
            node_count=NODE_COUNT,
        )
    )
    assert report.chaos["chaos_dropped_copies"] > 0
    assert report.chaos["chaos_duplicates_injected"] > 0
    assert (
        report.chaos["chaos_duplicates_injected"]
        == report.chaos["chaos_duplicates_suppressed"]
    )
    # Annotations are gated only for eager provenance; lazy coalescing makes
    # its recorded derivations schedule-dependent by design (view-only gate).
    assert report.annotations_compared == (scheme == "Absorption Eager")


def test_full_profile_composition_parity(workload):
    """Link faults + crash storm + doomed recoveries + scaling churn at once."""
    report = assert_parity(
        verify_sim_parity(
            reachability_plan(),
            "Absorption Eager",
            ChaosPlan.profile("full", SEED),
            workload,
            node_count=NODE_COUNT,
        )
    )
    assert report.chaos["supervised_actions"] >= 1
    assert report.chaos["supervised_exhausted"] == 0
    assert report.chaos["degraded_nodes"] == 0


def test_double_fault_crash_during_recovery_replay(workload):
    """A node that dies again mid-replay retries under the budget and converges."""
    plan = ChaosPlan(
        seed=SEED,
        name="double-fault",
        storm=CrashStormSpec(cycles=1, downtime=0.25, window=(0.2, 0.7)),
        recovery=RecoveryFaultSpec(failure_prob=1.0, max_failures=2),
    )
    report = assert_parity(
        verify_sim_parity(
            reachability_plan(),
            "Absorption Eager",
            plan,
            workload,
            node_count=NODE_COUNT,
        )
    )
    # Every crash's first replay is doomed, so each recovery took >= 1 retry.
    assert report.chaos["supervised_retries"] >= report.chaos["supervised_actions"] >= 1
    assert report.chaos["supervised_exhausted"] == 0


def test_degraded_mode_serves_stale_tagged_views(workload):
    """Recovery doomed past any budget ends in stale service, not a crash."""
    plan = ChaosPlan.profile("degraded", SEED)
    executor = chaos_executor(
        reachability_plan(),
        "Absorption Eager",
        chaos_plan=plan,
        supervisor_policy=RetryPolicy(max_attempts=2, base_delay=0.01),
        node_count=NODE_COUNT,
    )
    schedule_chaos(executor, plan, horizon=1.0)
    apply_workload(executor, workload)  # must not raise

    view, staleness = executor.view_with_staleness()
    assert staleness, "the doomed recovery should have degraded a node"
    for node_id, info in staleness.items():
        assert isinstance(info, StalenessInfo)
        assert info.node == node_id
        assert info.since >= 0.0
        assert info.reason
    assert view is not None
    stats = executor.chaos_stats()
    assert stats["supervised_exhausted"] >= 1
    assert stats["degraded_nodes"] == len(staleness)


def test_degraded_partitions_are_excluded_from_freshness_claims(workload):
    """A degraded run's view comes from last-converged snapshots, so it can
    differ from the fault-free reference — the gate must *fail* it rather
    than quietly bless stale data."""
    plan = ChaosPlan.profile("degraded", SEED)
    report = verify_sim_parity(
        reachability_plan(),
        "Absorption Eager",
        plan,
        workload,
        node_count=NODE_COUNT,
        supervisor_policy=RetryPolicy(max_attempts=2, base_delay=0.01),
    )
    assert report.chaos["degraded_nodes"] >= 1
    if not report.passed:
        with pytest.raises(ParityError):
            assert_parity(report)


def test_process_backend_kill_parity(workload, tmp_path):
    """Real SIGKILLs mid-run; WAL respawn keeps the result bit-identical."""
    report = assert_parity(
        verify_process_parity(
            reachability_plan(),
            "Absorption Eager",
            ChaosPlan.profile("kill", SEED),
            workload,
            wal_dir=tmp_path,
            node_count=NODE_COUNT,
            workers=2,
        )
    )
    assert report.chaos["worker_kills"] >= 1
    assert report.chaos["worker_respawns"] >= report.chaos["worker_kills"]


def test_process_double_fault_kill_during_respawn_replay(workload, tmp_path):
    """A worker SIGKILLed again during its WAL-replay respawn retries and passes."""
    plan = ChaosPlan(
        seed=SEED,
        name="respawn-doom",
        kills=WorkerKillSpec(kills=1, window=(0.3, 0.6)),
        respawn=RecoveryFaultSpec(failure_prob=1.0, max_failures=2),
    )
    report = assert_parity(
        verify_process_parity(
            reachability_plan(),
            "Absorption Eager",
            plan,
            workload,
            wal_dir=tmp_path,
            node_count=NODE_COUNT,
            workers=2,
        )
    )
    assert report.chaos["worker_kills"] >= 1
    assert report.chaos["worker_respawn_retries"] >= 2


def test_process_respawn_budget_is_bounded(workload, tmp_path):
    """With a one-attempt budget and doomed respawns, the run must *end* in a
    clear error — never loop respawning forever."""
    plan = ChaosPlan(
        seed=SEED,
        name="respawn-exhaust",
        kills=WorkerKillSpec(kills=1, window=(0.3, 0.6)),
        respawn=RecoveryFaultSpec(failure_prob=1.0, max_failures=10),
    )
    executor = build_executor(
        reachability_plan(),
        "Absorption Eager",
        node_count=NODE_COUNT,
        backend="process",
        workers=2,
        wal_dir=tmp_path,
    )
    try:
        coordinator = executor.network
        for fraction, wid in plan.kill_schedule(executor.workers):
            coordinator.schedule_worker_kill(fraction * 0.01, wid)
        coordinator.set_respawn_chaos(
            plan, RetryPolicy(max_attempts=1, base_delay=0.01)
        )
        with pytest.raises(SimulationError, match="respawn budget"):
            apply_workload(executor, workload)
    finally:
        executor.close()
