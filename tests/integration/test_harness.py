"""Smoke tests of the experiment harness and report formatting.

The full per-figure sweeps live in ``benchmarks/``; these tests only check
that the drivers produce well-formed rows at the smallest scale and that the
report helpers render them.
"""

from repro.harness import (
    format_rows,
    rows_to_csv,
    run_ablation_centralized_maintenance,
    run_ablation_provenance_encoding,
    run_figure13,
)
from repro.harness.config import QUICK_CONFIG, ExperimentConfig

METRIC_COLUMNS = {"per_tuple_provenance_B", "communication_MB", "state_MB", "convergence_time_s"}


def test_figure13_driver_produces_rows_per_processor_count():
    config = ExperimentConfig(
        node_count=4,
        nodes_per_stub=2,
        stubs_per_transit=2,
        processor_counts=(2, 4),
        max_wall_seconds=60.0,
    )
    rows = run_figure13(config)
    assert {row["processors"] for row in rows} == {2, 4}
    assert {row["scheme"] for row in rows} == {"DRed", "Absorption Lazy"}
    for row in rows:
        assert METRIC_COLUMNS <= set(row)
        assert row["converged"]


def test_provenance_encoding_ablation_rows():
    rows = run_ablation_provenance_encoding(QUICK_CONFIG)
    assert len(rows) == 2
    assert all(row["mean_per_tuple_B"] > 0 for row in rows)


def test_centralized_ablation_views_agree():
    rows = run_ablation_centralized_maintenance(QUICK_CONFIG)
    assert len({row["view_size"] for row in rows}) == 1


def test_report_formatting_roundtrip():
    rows = [
        {"scheme": "DRed", "communication_MB": 1.5, "converged": True},
        {"scheme": "Absorption Lazy", "communication_MB": 0.25, "converged": True},
    ]
    table = format_rows(rows, title="demo")
    assert "demo" in table and "Absorption Lazy" in table
    csv_text = rows_to_csv(rows)
    assert csv_text.splitlines()[0] == "scheme,communication_MB,converged"
    assert format_rows([]) == "(no rows)"
    assert rows_to_csv([]) == ""
