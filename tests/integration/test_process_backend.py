"""Integration tests: the process backend is bit-identical to the simulator.

The tentpole contract — running the engine across real OS worker processes
changes *where* handlers execute, and nothing else.  Views, per-tuple
absorbed provenance, event counts, message counts, shipped-update counts and
virtual-clock convergence times must all equal the single-process run, for
every execution strategy (including DRed's cross-node two-phase protocol and
eager absorption's coordinated flush).  On top of that: a worker killed
mid-run must be respawned and replayed from its command WAL with no change
to the final state.
"""

import os
import signal
import time

import pytest

from repro.obs.trace import Tracer, install_tracer
from repro.queries import build_executor, reachability_plan
from repro.workloads.topology import TransitStubConfig, generate_topology
from repro.workloads.updates import deletion_sample

NODE_COUNT = 6
STRATEGIES = ("DRed", "Absorption Lazy", "Absorption Eager")


@pytest.fixture(scope="module")
def workload():
    topology = generate_topology(TransitStubConfig(nodes_per_stub=2, dense=True, seed=7))
    links = topology.link_tuples()
    return links, deletion_sample(links, 0.2, seed=7)


def _fingerprint(executor, insert_phase, delete_phase):
    return {
        "view": executor.view(),
        "view_at": executor.view_at(3),
        "annotations": executor.view_annotations(),
        "events": executor.network.events_processed,
        "messages": insert_phase.messages + delete_phase.messages,
        "shipped": insert_phase.updates_shipped + delete_phase.updates_shipped,
        "convergence": (
            insert_phase.convergence_time_s,
            delete_phase.convergence_time_s,
        ),
    }


def _run(workload, scheme, backend, workers=None, wal_dir=None):
    links, deletions = workload
    executor = build_executor(
        reachability_plan(),
        scheme,
        node_count=NODE_COUNT,
        backend=backend,
        workers=workers,
        wal_dir=wal_dir,
    )
    try:
        insert_phase = executor.insert_edges(links)
        delete_phase = executor.delete_edges(deletions)
        return _fingerprint(executor, insert_phase, delete_phase)
    finally:
        executor.close()


@pytest.mark.parametrize("scheme", STRATEGIES)
def test_process_backend_is_bit_identical(workload, scheme):
    reference = _run(workload, scheme, "sim")
    assert _run(workload, scheme, "process", workers=2) == reference


def test_worker_count_does_not_change_results(workload):
    reference = _run(workload, "Absorption Eager", "sim")
    assert _run(workload, "Absorption Eager", "process", workers=1) == reference


def test_killed_worker_recovers_from_command_wal(workload, tmp_path):
    links, deletions = workload
    reference = _run(workload, "Absorption Eager", "sim")
    executor = build_executor(
        reachability_plan(),
        "Absorption Eager",
        node_count=NODE_COUNT,
        backend="process",
        workers=2,
        wal_dir=tmp_path,
    )
    try:
        insert_phase = executor.insert_edges(links)
        # Kill one worker between phases: the next dispatched command lands on
        # a dead process, and the coordinator must respawn it and replay its
        # command WAL before the delete phase can make progress.
        victim = executor._coordinator.worker_pids()[0]
        os.kill(victim, signal.SIGKILL)
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            try:
                os.kill(victim, 0)
            except ProcessLookupError:
                break
            time.sleep(0.05)
        delete_phase = executor.delete_edges(deletions)
        assert _fingerprint(executor, insert_phase, delete_phase) == reference
        assert executor._coordinator.worker_pids()[0] != victim
    finally:
        executor.close()


def test_killed_worker_without_wal_is_fatal(workload):
    links, deletions = workload
    executor = build_executor(
        reachability_plan(),
        "Absorption Eager",
        node_count=NODE_COUNT,
        backend="process",
        workers=2,
    )
    try:
        executor.insert_edges(links)
        victim = executor._coordinator.worker_pids()[0]
        os.kill(victim, signal.SIGKILL)
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            try:
                os.kill(victim, 0)
            except ProcessLookupError:
                break
            time.sleep(0.05)
        from repro.net.simulator import SimulationError

        with pytest.raises(SimulationError, match="died"):
            executor.delete_edges(deletions)
    finally:
        executor.close()


def test_worker_metrics_merge_into_phase_snapshot(workload):
    links, _ = workload
    executor = build_executor(
        reachability_plan(),
        "Absorption Eager",
        node_count=NODE_COUNT,
        backend="process",
        workers=2,
    )
    try:
        executor.insert_edges(links)
        snap = executor.metrics_registry.snapshot()
    finally:
        executor.close()
    # Unprefixed cluster aggregate next to per-worker views.
    assert snap["workers.work.deliveries"] > 0
    assert (
        snap["workers.w0.work.deliveries"] + snap["workers.w1.work.deliveries"]
        == snap["workers.work.deliveries"]
    )
    assert snap["workers.work.busy_seconds"] > 0
    # The kernel probe aggregates every worker's BDD manager.
    assert snap["kernel.table_size"] > 0


def test_explain_is_identical_across_backends(workload):
    """The ISSUE-9 acceptance property: sim and process explain identically."""
    links, _ = workload
    install_tracer(None)  # no tracer => empty message_path on both backends
    sim = build_executor(
        reachability_plan(), "Absorption Lazy", node_count=NODE_COUNT
    )
    proc = build_executor(
        reachability_plan(),
        "Absorption Lazy",
        node_count=NODE_COUNT,
        backend="process",
        workers=2,
    )
    try:
        sim.insert_edges(links)
        proc.insert_edges(links)
        targets = sorted(sim.view(), key=lambda t: t.key)[:5]
        assert targets
        assert sorted(proc.view(), key=lambda t: t.key)[:5] == targets
        for target in targets:
            assert proc.explain(target).as_json() == sim.explain(target).as_json()
        absent = sim.plan.result_schema.tuple("no-such", "tuple")
        assert proc.explain(absent).as_json() == sim.explain(absent).as_json()
    finally:
        sim.close()
        proc.close()


def test_sigkilled_worker_yields_post_mortem_flight_dump(workload, tmp_path):
    """A SIGKILLed worker without a WAL is fatal — but the flight recorder
    still captures a validated post-mortem dump, including the surviving
    workers' rings collected over the command queue."""
    from repro.net.simulator import SimulationError
    from repro.obs.export import load_trace_events, validate_chrome_trace
    from repro.obs.flight import FlightRecorder

    links, deletions = workload
    dump = tmp_path / "postmortem.json"
    recorder = FlightRecorder(dump_path=dump)
    previous = install_tracer(recorder)
    try:
        executor = build_executor(
            reachability_plan(),
            "Absorption Eager",
            node_count=NODE_COUNT,
            backend="process",
            workers=2,
        )
        try:
            executor.insert_edges(links)
            victim = executor._coordinator.worker_pids()[0]
            os.kill(victim, signal.SIGKILL)
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                try:
                    os.kill(victim, 0)
                except ProcessLookupError:
                    break
                time.sleep(0.05)
            with pytest.raises(SimulationError, match="died"):
                executor.delete_edges(deletions)
        finally:
            executor.close()
    finally:
        install_tracer(previous)
    assert dump.exists()
    validate_chrome_trace(dump)
    events = load_trace_events(dump)
    marks = [e for e in events if e.get("name") == "flight-dump"]
    assert len(marks) == 1
    assert "died" in marks[0]["args"]["reason"]
    # The surviving worker's rings were absorbed into the coordinator dump.
    with open(dump) as handle:
        import json

        labels = [
            e["args"]["name"]
            for e in json.load(handle)["traceEvents"]
            if e.get("ph") == "M" and e.get("name") == "process_name"
        ]
    assert any("worker 1" in label for label in labels)


def test_worker_traces_merge_into_coordinator_trace(workload):
    links, _ = workload
    tracer = Tracer()
    previous = install_tracer(tracer)
    try:
        executor = build_executor(
            reachability_plan(),
            "Absorption Eager",
            node_count=NODE_COUNT,
            backend="process",
            workers=2,
        )
        try:
            executor.insert_edges(links)
        finally:
            executor.close()
    finally:
        install_tracer(previous)
    deliver_pids = {
        event["pid"]
        for event in tracer.events
        if event.get("name", "").startswith("deliver:")
    }
    # Every node's handler spans arrive on the node's own track despite
    # running in worker processes.
    assert deliver_pids == set(range(NODE_COUNT))
    labels = tracer._process_labels.values()
    assert any("worker 0" in label for label in labels)
    assert any("worker 1" in label for label in labels)
    assert tracer.open_span_count() == 0
