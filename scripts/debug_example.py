"""Debug driver: run the paper's 3-node example under each strategy with a watchdog."""

import faulthandler
import sys
import time

faulthandler.dump_traceback_later(20, exit=True)

from repro.engine.strategy import ExecutionStrategy
from repro.net.partition import HashPartitioner
from repro.queries import build_executor, link, reachability_plan

LINKS = [link("A", "B"), link("B", "C"), link("C", "A"), link("C", "B")]


def run(strategy):
    partitioner = HashPartitioner.identity(3, {"A": 0, "B": 1, "C": 2})
    executor = build_executor(reachability_plan(), strategy, node_count=3, partitioner=partitioner)
    start = time.time()
    executor.insert_edges(LINKS)
    print(f"{strategy.label:20s} insert ok, view={len(executor.view())}, "
          f"events={executor.network.events_processed}, {time.time()-start:.2f}s", flush=True)
    executor.delete_edges([link("C", "B")])
    print(f"{strategy.label:20s} delete ok, view={len(executor.view())}, "
          f"events={executor.network.events_processed}, {time.time()-start:.2f}s", flush=True)


for s in [
    ExecutionStrategy.dred(),
    ExecutionStrategy.absorption_eager(),
    ExecutionStrategy.absorption_lazy(),
    ExecutionStrategy.relative_eager(),
    ExecutionStrategy.relative_lazy(),
]:
    faulthandler.cancel_dump_traceback_later()
    faulthandler.dump_traceback_later(20, exit=True)
    run(s)
print("all done")
