#!/usr/bin/env python
"""Validate an exported Chrome trace file (CI gate for ``--trace`` output).

Checks the JSON shape, span durations, per-track nesting, required span
categories and per-node track presence via
:func:`repro.obs.export.validate_chrome_trace`, then prints the trace
summary.  Exit status 1 on any violation::

    PYTHONPATH=src python scripts/validate_trace.py trace.json \
        --require-cats kernel routing operator net gc
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.obs.export import (  # noqa: E402
    load_trace_events,
    validate_chrome_trace,
    validate_flow_balance,
    validate_track_monotonicity,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", type=Path, help="trace file (.json or .jsonl)")
    parser.add_argument(
        "--require-cats",
        nargs="*",
        default=(),
        metavar="CAT",
        help="span categories that must be present (e.g. kernel routing gc)",
    )
    parser.add_argument(
        "--require-node-tracks",
        type=int,
        default=1,
        metavar="N",
        help="minimum number of per-node tracks (default 1)",
    )
    parser.add_argument(
        "--check-flows",
        action="store_true",
        help="also require every flow finish to pair with exactly one start "
        "(catches unremapped ids on merged process-backend traces)",
    )
    parser.add_argument(
        "--check-monotonic",
        action="store_true",
        help="also require per-track file-order timestamp monotonicity "
        "(catches pid collisions when worker traces are absorbed)",
    )
    args = parser.parse_args(argv)
    try:
        summary = validate_chrome_trace(
            args.trace,
            require_categories=args.require_cats,
            require_node_tracks=args.require_node_tracks,
        )
    except (ValueError, OSError) as exc:
        print(f"INVALID: {args.trace}: {exc}", file=sys.stderr)
        return 1
    problems = []
    if args.check_flows or args.check_monotonic:
        events = load_trace_events(args.trace)
        if args.check_flows:
            problems.extend(validate_flow_balance(events))
        if args.check_monotonic:
            problems.extend(validate_track_monotonicity(events))
    if problems:
        print(f"INVALID: {args.trace}:", file=sys.stderr)
        for problem in problems:
            print(f"  - {problem}", file=sys.stderr)
        return 1
    print(f"OK: {args.trace}")
    for key, value in summary.items():
        print(f"  {key}: {value}")
    if args.check_flows:
        print("  flow balance: ok")
    if args.check_monotonic:
        print("  track monotonicity: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
