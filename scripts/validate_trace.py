#!/usr/bin/env python
"""Validate an exported Chrome trace file (CI gate for ``--trace`` output).

Checks the JSON shape, span durations, per-track nesting, required span
categories and per-node track presence via
:func:`repro.obs.export.validate_chrome_trace`, then prints the trace
summary.  Exit status 1 on any violation::

    PYTHONPATH=src python scripts/validate_trace.py trace.json \
        --require-cats kernel routing operator net gc
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.obs.export import validate_chrome_trace  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", type=Path, help="trace file (.json or .jsonl)")
    parser.add_argument(
        "--require-cats",
        nargs="*",
        default=(),
        metavar="CAT",
        help="span categories that must be present (e.g. kernel routing gc)",
    )
    parser.add_argument(
        "--require-node-tracks",
        type=int,
        default=1,
        metavar="N",
        help="minimum number of per-node tracks (default 1)",
    )
    args = parser.parse_args(argv)
    try:
        summary = validate_chrome_trace(
            args.trace,
            require_categories=args.require_cats,
            require_node_tracks=args.require_node_tracks,
        )
    except (ValueError, OSError) as exc:
        print(f"INVALID: {args.trace}: {exc}", file=sys.stderr)
        return 1
    print(f"OK: {args.trace}")
    for key, value in summary.items():
        print(f"  {key}: {value}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
