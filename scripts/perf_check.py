"""Calibration script: how long do the figure-style experiments take at various scales?

Besides the human-readable table it always emits a machine-readable
``BENCH_perf_check.json`` (override with ``--output``) so the performance
trajectory can be tracked across PRs::

    PYTHONPATH=src python scripts/perf_check.py --nodes-per-stub 3 --strategies "DRed,Absorption Lazy"

With ``--baseline`` the run is additionally compared against a committed
reference (CI uses ``benchmarks/baselines/perf_check_baseline.json``) and the
process exits non-zero when any strategy's wall-clock time regresses by more
than ``--max-regression`` (default 2x)::

    PYTHONPATH=src python scripts/perf_check.py --baseline benchmarks/baselines/perf_check_baseline.json
"""

import argparse
import json
import platform
import sys
import time

from repro.data.batch import BatchPolicy
from repro.engine.strategy import ExecutionStrategy
from repro.harness.report import format_kernel_stats
from repro.queries import build_executor, reachability_plan
from repro.workloads.topology import TransitStubConfig, generate_topology
from repro.workloads.updates import deletion_sample


def _measure(strategy, label, policy, links, deletion_ratio, backend="sim", workers=None):
    """One insert-then-delete cycle under ``strategy``; returns a result row."""
    executor = build_executor(
        reachability_plan(), strategy, node_count=12, batch_policy=policy,
        backend=backend, workers=workers,
    )
    try:
        t0 = time.time()
        ins = executor.insert_edges(links)
        t1 = time.time()
        dels = deletion_sample(links, deletion_ratio)
        del_phase = executor.delete_edges(dels)
        t2 = time.time()
        print(
            f"{label:28s} insert {t1-t0:6.2f}s ({ins.updates_shipped} shipped, "
            f"{executor.network.events_processed} events) delete{int(deletion_ratio*100)}% "
            f"{t2-t1:6.2f}s view={len(executor.view())}",
            flush=True,
        )
        row = {
            "strategy": label,
            "insert_wall_seconds": round(t1 - t0, 4),
            "delete_wall_seconds": round(t2 - t1, 4),
            "insert_updates_shipped": ins.updates_shipped,
            "insert_communication_MB": round(ins.communication_mb, 6),
            "delete_communication_MB": round(del_phase.communication_mb, 6),
            "insert_convergence_s": round(ins.convergence_time_s, 6),
            "delete_convergence_s": round(del_phase.convergence_time_s, 6),
            "events_processed": executor.network.events_processed,
            "view_size": len(executor.view()),
        }
        kernel = executor.store.kernel_stats()
        if kernel is not None:
            # Whole-run BDD kernel telemetry: the perf trajectory finally has
            # kernel-level numbers (peak table, reclamation, pauses, time).
            row["kernel"] = {
                "table_size": kernel["table_size"],
                "peak_table_size": kernel["peak_table_size"],
                "nodes_reclaimed": kernel["nodes_reclaimed"],
                "gc_passes": kernel["gc_passes"],
                "gc_compactions": kernel["gc_compactions"],
                "gc_pause_s": round(kernel["gc_pause_s"], 6),
                "kernel_time_s": round(kernel["kernel_time_s"], 6),
                "gc_threshold": kernel["gc_threshold"],
            }
            # Per-phase BDD vs routing vs operator vs net decomposition.
            for phase_label, phase in (("insert", ins), ("delete", del_phase)):
                if phase.kernel is not None:
                    row[f"{phase_label}_kernel_time_s"] = round(phase.kernel.kernel_time_s, 6)
                    row[f"{phase_label}_routing_time_s"] = round(phase.kernel.routing_time_s, 6)
                    row[f"{phase_label}_operator_time_s"] = round(phase.kernel.operator_time_s, 6)
                    row[f"{phase_label}_net_time_s"] = round(phase.kernel.net_time_s, 6)
                    row[f"{phase_label}_nodes_reclaimed"] = phase.kernel.nodes_reclaimed
                    row[f"{phase_label}_routing_bulk_lookups"] = phase.kernel.routing_bulk_lookups
                    row[f"{phase_label}_routing_cache_hits"] = phase.kernel.routing_cache_hits
            print("  " + format_kernel_stats(kernel, label="bdd-kernel"))
        return row
    finally:
        executor.close()


def run(nodes_per_stub, dense, strategies, batch_size=64, deletion_ratio=0.2,
        bdd_gc_threshold=None, process_workers=()):
    config = TransitStubConfig(nodes_per_stub=nodes_per_stub, dense=dense, seed=7)
    topo = generate_topology(config)
    links = topo.link_tuples()
    policy = (
        BatchPolicy(max_batch=batch_size) if batch_size > 1 else BatchPolicy.tuple_at_a_time()
    )
    print(f"--- topology: {len(topo.nodes)} nodes, {topo.directed_link_count} directed links, dense={dense}")
    results = []
    for strategy in strategies:
        strategy = strategy.with_kernel_options(gc_threshold=bdd_gc_threshold)
        results.append(
            _measure(strategy, strategy.label, policy, links, deletion_ratio)
        )
        # Process-backend rows ride next to the simulator rows so the perf
        # trajectory tracks single- vs multi-worker wall clock side by side.
        for workers in process_workers:
            results.append(
                _measure(
                    strategy,
                    f"{strategy.label} [process x{workers}]",
                    policy,
                    links,
                    deletion_ratio,
                    backend="process",
                    workers=workers,
                )
            )
    return {
        "topology": {
            "router_nodes": len(topo.nodes),
            "directed_links": topo.directed_link_count,
            "nodes_per_stub": nodes_per_stub,
            "dense": dense,
        },
        "deletion_ratio": deletion_ratio,
        "results": results,
    }


def compare_to_baseline(report, baseline_path, max_regression):
    """Compare a run against a committed baseline report.

    Two gates, both ``max_regression``-bounded:

    * **wall clock** per phase, against ``max(baseline, 0.5s)`` — the floor
      absorbs both timer noise and the machine-speed gap between the box
      that committed the baseline and a loaded CI runner;
    * **simulated events processed** — deterministic and machine-independent,
      so it catches algorithmic blow-ups that a fast runner's wall clock
      would hide.

    Returns a list of human-readable regression messages (empty = pass).
    Strategies absent from the baseline are skipped, so adding a strategy
    never fails the gate.
    """
    with open(baseline_path) as handle:
        baseline = json.load(handle)
    reference = {row["strategy"]: row for row in baseline.get("results", [])}
    failures = []
    for row in report["results"]:
        expected = reference.get(row["strategy"])
        if expected is None:
            continue
        for metric in ("insert_wall_seconds", "delete_wall_seconds"):
            floor = max(float(expected[metric]), 0.5)
            actual = float(row[metric])
            if actual > floor * max_regression:
                failures.append(
                    f"{row['strategy']}: {metric} {actual:.2f}s vs baseline "
                    f"{float(expected[metric]):.2f}s (> {max_regression:.1f}x)"
                )
        expected_events = int(expected.get("events_processed", 0))
        actual_events = int(row["events_processed"])
        if expected_events and actual_events > expected_events * max_regression:
            failures.append(
                f"{row['strategy']}: events_processed {actual_events} vs baseline "
                f"{expected_events} (> {max_regression:.1f}x)"
            )
    return failures


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--nodes-per-stub", type=int, default=3)
    parser.add_argument("--density", choices=["dense", "sparse"], default="dense")
    parser.add_argument(
        "--strategies",
        default="DRed,Absorption Lazy,Absorption Eager",
        help="comma-separated strategy labels",
    )
    parser.add_argument(
        "--batch-size",
        type=int,
        default=64,
        help="update-batching knob (1 = tuple-at-a-time pipeline)",
    )
    parser.add_argument(
        "--deletion-ratio",
        type=float,
        default=0.2,
        help="fraction of links deleted in the deletion phase (0.2 = fig-12)",
    )
    parser.add_argument(
        "--bdd-gc-threshold",
        type=float,
        default=None,
        help="BDD-table dead fraction that triggers a compacting GC "
        "(absorption strategies; default: the manager's 0.25)",
    )
    parser.add_argument(
        "--process-workers",
        default=None,
        metavar="N[,N...]",
        help="also measure the process backend at these worker counts "
        "(e.g. '1,4'; rows appear as '<strategy> [process xN]')",
    )
    parser.add_argument(
        "--output",
        default="BENCH_perf_check.json",
        help="machine-readable result file (JSON)",
    )
    parser.add_argument(
        "--trajectory",
        default="BENCH_9.json",
        help="condensed wall + kernel/routing-split record committed to the "
        "repo root so the perf trajectory is tracked across PRs "
        "('' disables)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="committed reference JSON; exit non-zero on wall-clock regression",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=2.0,
        help="allowed wall-clock slowdown factor vs the baseline (default 2x)",
    )
    args = parser.parse_args()

    strategies = [ExecutionStrategy.by_name(label) for label in args.strategies.split(",")]
    process_workers = ()
    if args.process_workers:
        process_workers = tuple(
            int(count) for count in args.process_workers.split(",") if count.strip()
        )
    report = run(
        args.nodes_per_stub,
        args.density == "dense",
        strategies,
        batch_size=args.batch_size,
        deletion_ratio=args.deletion_ratio,
        bdd_gc_threshold=args.bdd_gc_threshold,
        process_workers=process_workers,
    )
    report.update(
        {
            "benchmark": "perf_check",
            "batch_size": args.batch_size,
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            "python": platform.python_version(),
            "platform": platform.platform(),
        }
    )
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"(wrote {args.output})")

    if args.trajectory:
        # The cross-PR trajectory record: wall clock plus the kernel/routing
        # split per strategy, small enough to commit next to the code.
        split_keys = tuple(
            f"{phase}_{part}_time_s"
            for phase in ("insert", "delete")
            for part in ("kernel", "routing")
        )
        trajectory = {
            "benchmark": "perf_check_trajectory",
            "pr": 9,
            "timestamp": report["timestamp"],
            "python": report["python"],
            "platform": report["platform"],
            "topology": report["topology"],
            "strategies": [
                {
                    "strategy": row["strategy"],
                    "insert_wall_seconds": row["insert_wall_seconds"],
                    "delete_wall_seconds": row["delete_wall_seconds"],
                    **{key: row[key] for key in split_keys if key in row},
                }
                for row in report["results"]
            ],
        }
        with open(args.trajectory, "w") as handle:
            json.dump(trajectory, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"(wrote {args.trajectory})")

    if args.baseline:
        failures = compare_to_baseline(report, args.baseline, args.max_regression)
        if failures:
            print("PERFORMANCE REGRESSION vs", args.baseline)
            for failure in failures:
                print(" -", failure)
            return 1
        print(f"(within {args.max_regression:.1f}x of {args.baseline})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
