"""Calibration script: how long do the figure-style experiments take at various scales?

Besides the human-readable table it always emits a machine-readable
``BENCH_perf_check.json`` (override with ``--output``) so the performance
trajectory can be tracked across PRs::

    PYTHONPATH=src python scripts/perf_check.py --nodes-per-stub 3 --strategies "DRed,Absorption Lazy"
"""

import argparse
import json
import platform
import time

from repro.engine.strategy import ExecutionStrategy
from repro.queries import build_executor, reachability_plan
from repro.workloads.topology import TransitStubConfig, generate_topology
from repro.workloads.updates import deletion_sample


def run(nodes_per_stub, dense, strategies):
    config = TransitStubConfig(nodes_per_stub=nodes_per_stub, dense=dense, seed=7)
    topo = generate_topology(config)
    links = topo.link_tuples()
    print(f"--- topology: {len(topo.nodes)} nodes, {topo.directed_link_count} directed links, dense={dense}")
    results = []
    for strategy in strategies:
        executor = build_executor(reachability_plan(), strategy, node_count=12)
        t0 = time.time()
        ins = executor.insert_edges(links)
        t1 = time.time()
        dels = deletion_sample(links, 0.2)
        del_phase = executor.delete_edges(dels)
        t2 = time.time()
        print(
            f"{strategy.label:18s} insert {t1-t0:6.2f}s ({ins.updates_shipped} shipped, "
            f"{executor.network.events_processed} events) delete20% {t2-t1:6.2f}s view={len(executor.view())}",
            flush=True,
        )
        results.append(
            {
                "strategy": strategy.label,
                "insert_wall_seconds": round(t1 - t0, 4),
                "delete_wall_seconds": round(t2 - t1, 4),
                "insert_updates_shipped": ins.updates_shipped,
                "insert_communication_MB": round(ins.communication_mb, 6),
                "delete_communication_MB": round(del_phase.communication_mb, 6),
                "insert_convergence_s": round(ins.convergence_time_s, 6),
                "delete_convergence_s": round(del_phase.convergence_time_s, 6),
                "events_processed": executor.network.events_processed,
                "view_size": len(executor.view()),
            }
        )
    return {
        "topology": {
            "router_nodes": len(topo.nodes),
            "directed_links": topo.directed_link_count,
            "nodes_per_stub": nodes_per_stub,
            "dense": dense,
        },
        "results": results,
    }


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--nodes-per-stub", type=int, default=3)
    parser.add_argument("--density", choices=["dense", "sparse"], default="dense")
    parser.add_argument(
        "--strategies",
        default="DRed,Absorption Lazy,Absorption Eager",
        help="comma-separated strategy labels",
    )
    parser.add_argument(
        "--output",
        default="BENCH_perf_check.json",
        help="machine-readable result file (JSON)",
    )
    args = parser.parse_args()

    strategies = [ExecutionStrategy.by_name(label) for label in args.strategies.split(",")]
    report = run(args.nodes_per_stub, args.density == "dense", strategies)
    report.update(
        {
            "benchmark": "perf_check",
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            "python": platform.python_version(),
            "platform": platform.platform(),
        }
    )
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"(wrote {args.output})")


if __name__ == "__main__":
    main()
