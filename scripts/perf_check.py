"""Calibration script: how long do the figure-style experiments take at various scales?"""

import sys
import time

from repro.engine.strategy import ExecutionStrategy
from repro.queries import build_executor, reachability_plan
from repro.workloads.topology import TransitStubConfig, generate_topology
from repro.workloads.updates import deletion_sample


def run(nodes_per_stub, dense, strategies):
    config = TransitStubConfig(nodes_per_stub=nodes_per_stub, dense=dense, seed=7)
    topo = generate_topology(config)
    links = topo.link_tuples()
    print(f"--- topology: {len(topo.nodes)} nodes, {topo.directed_link_count} directed links, dense={dense}")
    for strategy in strategies:
        executor = build_executor(reachability_plan(), strategy, node_count=12)
        t0 = time.time()
        ins = executor.insert_edges(links)
        t1 = time.time()
        dels = deletion_sample(links, 0.2)
        executor.delete_edges(dels)
        t2 = time.time()
        print(
            f"{strategy.label:18s} insert {t1-t0:6.2f}s ({ins.updates_shipped} shipped, "
            f"{executor.network.events_processed} events) delete20% {t2-t1:6.2f}s view={len(executor.view())}",
            flush=True,
        )


if __name__ == "__main__":
    nodes_per_stub = int(sys.argv[1]) if len(sys.argv) > 1 else 3
    dense = (sys.argv[2] != "sparse") if len(sys.argv) > 2 else True
    labels = sys.argv[3].split(",") if len(sys.argv) > 3 else ["DRed", "Absorption Lazy", "Absorption Eager"]
    strategies = [ExecutionStrategy.by_name(label) for label in labels]
    run(nodes_per_stub, dense, strategies)
