"""Centralized Datalog with provenance semirings.

The distributed engine builds on classical recursive query processing.  This
example uses the centralized Datalog substrate directly: it parses the paper's
reachability program, evaluates it with semi-naive evaluation, computes
absorption (PosBool) provenance for every derived fact, compares incremental
maintenance strategies (counting vs DRed vs provenance), and evaluates the
region query's aggregates.

Run with::

    python examples/datalog_provenance.py
"""

from repro.datalog import (
    AggregateView,
    DRedMaintenance,
    ProvenanceMaintenance,
    SemiNaiveEvaluator,
    parse_program,
)
from repro.datalog.aggregates import AggregateKind
from repro.datalog.incremental import CountingMaintenance, MaintenanceError
from repro.provenance.semiring import BooleanSemiring


def banner(text: str) -> None:
    print()
    print("=" * 72)
    print(text)
    print("=" * 72)


REACHABLE = """
% Query 1 of the paper: network reachability.
reachable(x, y) :- link(x, y).
reachable(x, y) :- link(x, z), reachable(z, y).
"""

EDB = {"link": {("a", "b"), ("b", "c"), ("c", "a"), ("c", "b")}}


def main() -> None:
    banner("1. Parsing and evaluating the reachability program")
    program = parse_program(REACHABLE)
    print(f"Parsed: {program!r}")
    evaluator = SemiNaiveEvaluator(program)
    database = evaluator.evaluate(EDB)
    print(f"Semi-naive evaluation derived {len(database['reachable'])} reachable facts "
          f"in {evaluator.rounds} delta rounds ({evaluator.firings} rule firings).")

    banner("2. Absorption (PosBool) provenance of every derived fact")
    annotations = evaluator.evaluate_with_provenance(EDB, BooleanSemiring)
    for fact in sorted(annotations["reachable"]):
        print(f"  reachable{fact}: {annotations['reachable'][fact]!r}")

    banner("3. Incremental maintenance: counting vs DRed vs provenance")
    try:
        CountingMaintenance(program)
    except MaintenanceError as error:
        print(f"Counting refuses the recursive program: {error}")

    dred = DRedMaintenance(program)
    provenance = ProvenanceMaintenance(program)
    for fact in EDB["link"]:
        dred.insert("link", fact)
        provenance.insert("link", fact)
    print("Deleting link(c, b) ...")
    dred.delete("link", ("c", "b"))
    provenance.delete("link", ("c", "b"))
    print(f"  DRed over-deleted {dred.last_overdeleted} facts and re-derived "
          f"{dred.last_rederived} of them.")
    print(f"  Provenance maintenance simply restricted the annotations; "
          f"reachable still has {len(provenance.facts('reachable'))} facts "
          f"(same as DRed: {len(dred.facts('reachable'))}).")
    print("  Provenance of reachable(c, b) is now:",
          provenance.provenance_of("reachable", ("c", "b")))

    banner("4. Aggregates over the region query")
    region_program = parse_program(
        """
        activeRegion(r, x) :- seed(r, x).
        activeRegion(r, y) :- proximity(x, y), activeRegion(r, x).
        """
    )
    region_edb = {
        "seed": {("r1", "s1"), ("r2", "s9")},
        "proximity": {("s1", "s2"), ("s2", "s3"), ("s9", "s8")},
    }
    region_db = SemiNaiveEvaluator(region_program).evaluate(region_edb)
    sizes = AggregateView("regionSizes", "activeRegion", (0,), AggregateKind.COUNT)
    largest = AggregateView("largestRegion", "regionSizes", (), AggregateKind.MAX, value_position=1)
    sizes.evaluate_into(region_db)
    largest.evaluate_into(region_db)
    print("activeRegion:", sorted(region_db["activeRegion"]))
    print("regionSizes:", sorted(region_db["regionSizes"]))
    print("largestRegion:", sorted(region_db["largestRegion"]))


if __name__ == "__main__":
    main()
