"""Declarative networking: reachability and cheapest paths over an Internet-like topology.

This example mirrors the paper's declarative-networking workload (Section 7.1,
Workload 1): a GT-ITM-style transit-stub topology, the ``reachable`` view
maintained under link churn, and the shortest/cheapest-path query with
multi-aggregate selection producing ``minCost`` / ``cheapestPath`` /
``shortestCheapestPath`` routing state.

Run with::

    python examples/declarative_networking.py
"""

from repro.baselines.networkx_ref import cheapest_path_costs, reachable_pairs
from repro.queries import (
    build_executor,
    cheapest_paths,
    min_costs,
    min_hops,
    reachability_plan,
    shortest_cheapest_paths,
    shortest_path_plan,
)
from repro.workloads import TransitStubConfig, generate_topology
from repro.workloads.updates import deletion_sample


def banner(text: str) -> None:
    print()
    print("=" * 72)
    print(text)
    print("=" * 72)


def main() -> None:
    config = TransitStubConfig(nodes_per_stub=2, stubs_per_transit=3, dense=True, seed=7)
    topology = generate_topology(config)
    banner(f"Topology: {topology!r}")
    print(f"{len(topology.nodes)} routers, {topology.directed_link_count} directed link tuples")

    # ---------------------------------------------------------------- reachability
    banner("Maintaining network reachability under link churn (Absorption Lazy)")
    links = topology.link_tuples()
    executor = build_executor(reachability_plan(), "Absorption Lazy", node_count=12)
    insert_phase = executor.insert_edges(links)
    print(f"Initial computation: {len(executor.view())} reachable pairs, "
          f"{insert_phase.communication_mb:.3f} MB shipped, "
          f"converged in {insert_phase.convergence_time_s * 1000:.1f} ms (simulated).")

    failures = deletion_sample(links, 0.15, seed=3)
    delete_phase = executor.delete_edges(failures)
    print(f"After {len(failures)} link failures: {len(executor.view())} reachable pairs, "
          f"maintenance shipped {delete_phase.communication_mb:.3f} MB.")

    live_pairs = [(l["src"], l["dst"]) for l in links if l not in set(failures)]
    assert executor.view_values() == reachable_pairs(live_pairs), "view must match ground truth"
    print("The maintained view matches a from-scratch networkx computation.")

    # ---------------------------------------------------------------- cheapest paths
    banner("Cheapest and fewest-hop paths with multi-aggregate selection")
    cost_links = topology.cost_link_tuples()
    path_executor = build_executor(
        shortest_path_plan(aggregate_selection="multi"), "Absorption Lazy", node_count=12
    )
    phase = path_executor.insert_edges(cost_links)
    paths = path_executor.view()
    print(f"Path view holds {len(paths)} pruned path tuples "
          f"({phase.communication_mb:.3f} MB shipped with AggSel pruning).")

    costs = min_costs(paths)
    hops = min_hops(paths)
    truth = cheapest_path_costs([(l["src"], l["dst"], l["cost"]) for l in cost_links])
    sample_pairs = sorted(pair for pair in costs if pair[0] != pair[1])[:5]
    print("Sample of the routing state (minCost / minHops, checked against Dijkstra):")
    for src, dst in sample_pairs:
        assert abs(costs[(src, dst)] - truth[(src, dst)]) < 1e-9
        print(f"  {src:>12s} -> {dst:<12s} cost={costs[(src, dst)]:6.1f} ms  "
              f"hops={hops[(src, dst)]}")

    best = shortest_cheapest_paths(paths)
    example = sorted(best, key=lambda t: (str(t['src']), str(t['dst'])))[0]
    print("\nshortestCheapestPath example:")
    print(f"  {example['src']} -> {example['dst']}: cheapest route {example['cheapest_vec']} "
          f"(cost {example['cost']}), fewest hops route {example['fewest_vec']} "
          f"({example['length']} hops)")

    cheapest = cheapest_paths(paths)
    print(f"\ncheapestPath view holds {len(cheapest)} tuples; "
          f"fewestHops and minCost stay consistent under the same maintenance machinery.")


if __name__ == "__main__":
    main()
