"""Sensor networks: tracking contiguous triggered regions (the "largest region" query).

This example mirrors the paper's sensor workload (Section 7.1, Workload 2): a
grid of sensors with reference ("seed") devices, a fire-like trigger front that
spreads across the field, and the recursive ``activeRegion`` view maintained as
sensors trigger and recover — including the ``regionSizes`` and
``largestRegion`` aggregates.

Run with::

    python examples/sensor_regions.py
"""

import random

from repro.queries import build_executor, largest_regions, region_plan, region_sizes
from repro.queries.regions import members_of
from repro.workloads import SensorField, SensorWorkload


def banner(text: str) -> None:
    print()
    print("=" * 72)
    print(text)
    print("=" * 72)


def apply_delta(executor, delta):
    return executor.apply_mixed(
        edge_inserts=delta.proximity_inserts,
        edge_deletes=delta.proximity_deletes,
        seed_inserts=delta.seed_inserts,
        seed_deletes=delta.seed_deletes,
    )


def report(executor, workload) -> None:
    view = executor.view()
    sizes = region_sizes(view)
    print(f"  triggered sensors: {len(workload.triggered):3d}   region sizes: "
          + ", ".join(f"{region}={size}" for region, size in sorted(sizes.items())))
    winners = largest_regions(view)
    if winners:
        print(f"  largestRegions -> {winners} (size {max(sizes.values())})")
    expected = workload.expected_regions()
    actual = {region: members_of(view, region) for region in expected}
    assert actual == expected, "maintained regions must match ground truth"


def main() -> None:
    field = SensorField.grid(
        side_metres=50, spacing_metres=10, proximity_radius=20, seed_groups=3, rng_seed=11
    )
    workload = SensorWorkload(field)
    executor = build_executor(region_plan(), "Absorption Lazy", node_count=8)
    rng = random.Random(42)

    banner(f"Sensor field: {len(field.sensors)} sensors, seeds {sorted(field.seed_sensors)}")

    banner("1. The reference sensors trigger (seed the regions)")
    apply_delta(executor, workload.trigger_many(field.seed_sensors))
    report(executor, workload)

    banner("2. A trigger front spreads: 60% of the sensors fire")
    others = [s for s in field.sensor_ids if not field.is_seed(s)]
    rng.shuffle(others)
    firing = others[: int(len(others) * 0.6)]
    phase = apply_delta(executor, workload.trigger_many(firing))
    print(f"  maintenance shipped {phase.communication_mb:.3f} MB, "
          f"converged in {phase.convergence_time_s * 1000:.1f} ms (simulated)")
    report(executor, workload)

    banner("3. Half of the triggered sensors recover (soft state expires)")
    recovering = firing[: len(firing) // 2]
    phase = apply_delta(executor, workload.untrigger_many(recovering))
    print(f"  deletions shipped {phase.communication_mb:.3f} MB under absorption provenance")
    report(executor, workload)

    banner("4. The front flares up again near one seed")
    seed = next(iter(field.seed_sensors))
    flare = field.neighbors_of(seed)
    phase = apply_delta(executor, workload.trigger_many(flare))
    report(executor, workload)

    banner("Done")
    print("Region membership stayed exactly consistent with a from-scratch computation")
    print("after every batch of trigger and recovery events.")


if __name__ == "__main__":
    main()
