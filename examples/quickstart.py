"""Quickstart: maintain a distributed reachability view with absorption provenance.

This walks through the paper's worked example (Figures 2, 3 and 5): a
three-node network A, B, C with four links, the distributed computation of the
``reachable`` transitive-closure view, and what happens when ``link(C, B)`` is
deleted — under absorption provenance (cheap, precise) and under DRed
(over-delete and re-derive).

Run with::

    python examples/quickstart.py
"""

from repro.engine.strategy import ExecutionStrategy
from repro.net.partition import HashPartitioner
from repro.queries import build_executor, link, reachability_plan


def banner(text: str) -> None:
    print()
    print("=" * 72)
    print(text)
    print("=" * 72)


def make_executor(strategy: ExecutionStrategy):
    """One query processor per network node, exactly as in the paper's example."""
    partitioner = HashPartitioner.identity(3, {"A": 0, "B": 1, "C": 2})
    return build_executor(
        reachability_plan(), strategy, node_count=3, partitioner=partitioner
    )


LINKS = [link("A", "B"), link("B", "C"), link("C", "A"), link("C", "B")]


def show_view(executor) -> None:
    for node_id, name in enumerate("ABC"):
        pairs = sorted(t.values for t in executor.view_at(node_id))
        print(f"  node {name}: {pairs}")


def main() -> None:
    banner("1. Computing the reachable view (Absorption Lazy)")
    absorption = make_executor(ExecutionStrategy.absorption_lazy())
    phase = absorption.insert_edges(LINKS)
    print(f"Inserted {len(LINKS)} link tuples.")
    print(f"Shipped {phase.updates_shipped} tuples, {phase.communication_mb * 1000:.2f} KB "
          f"of traffic, converged at t={phase.convergence_time_s * 1000:.2f} ms (simulated).")
    print("The reachable view, partitioned by source node:")
    show_view(absorption)

    banner("2. Inspecting absorption provenance")
    from repro.queries import reachable

    node_c = absorption.nodes[2]
    annotation = node_c.fixpoint.annotation_of(reachable("C", "B"))
    print("Provenance of reachable(C, B) stored at node C:")
    print(" ", absorption.store.describe(annotation))
    print("(p4 alone, or p1 and p3 together — exactly Figure 2 of the paper.)")

    banner("3. Deleting link(C, B) under absorption provenance")
    phase = absorption.delete_edges([link("C", "B")])
    print(f"Deletion shipped {phase.updates_shipped} tuples "
          f"({phase.communication_mb * 1000:.2f} KB).")
    print("The view is unchanged — every pair is still derivable without link(C, B):")
    show_view(absorption)
    annotation = node_c.fixpoint.annotation_of(reachable("C", "B"))
    print("Provenance of reachable(C, B) is now:", absorption.store.describe(annotation))

    banner("4. The same deletion under DRed (delete and re-derive)")
    dred = make_executor(ExecutionStrategy.dred())
    dred.insert_edges(LINKS)
    phase = dred.delete_edges([link("C", "B")])
    print(f"DRed shipped {phase.updates_shipped} tuples "
          f"({phase.communication_mb * 1000:.2f} KB) to handle one deletion —")
    print("roughly the cost of recomputing the whole view, as Section 3.2 observes.")
    show_view(dred)

    banner("5. Summary")
    for executor, label in ((absorption, "Absorption Lazy"), (dred, "DRed")):
        deletion_phase = executor.metrics.phases[-1]
        print(
            f"  {label:16s} deletion traffic: {deletion_phase.communication_mb * 1000:8.2f} KB  "
            f"updates shipped: {deletion_phase.updates_shipped:4d}"
        )


if __name__ == "__main__":
    main()
