"""Ablation — MinShip batching window (Section 5).

Sweeps the eager MinShip batch size ``W`` on the reachable insertion workload.
Smaller windows propagate more alternate derivations (more traffic, fresher
remote provenance); larger windows approach lazy propagation.
"""

from benchmarks.conftest import report_figure, run_once
from repro.harness import run_ablation_minship_batch


def test_ablation_minship_batch_size(benchmark, experiment_config):
    rows = run_once(benchmark, run_ablation_minship_batch, experiment_config)
    report_figure(rows, title="Ablation: MinShip batch size (eager propagation)")
    converged = [r for r in rows if r["converged"]]
    assert len(converged) >= 2
    # Larger batches never ship more than the smallest batch size.
    assert converged[-1]["communication_MB"] <= converged[0]["communication_MB"] * 1.05
