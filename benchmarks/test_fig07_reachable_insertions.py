"""Figure 7 — ``reachable`` view computation as links are inserted.

Compares DRed, Relative Eager/Lazy and Absorption Eager/Lazy while inserting
growing fractions of the transit-stub topology's links, reporting the paper's
four metrics per insertion ratio.  Expected shape (Section 7.2): DRed is the
cheapest on an insertion-only workload (provenance is pure overhead there),
Absorption Lazy is the cheapest provenance scheme, Relative Eager blows up.
"""

from benchmarks.conftest import report_figure, run_once
from repro.harness import run_figure7


def test_figure7_reachable_insertions(benchmark, experiment_config):
    rows = run_once(benchmark, run_figure7, experiment_config)
    report_figure(rows, title="Figure 7: reachable query computation as insertions are performed")
    assert rows, "the experiment produced no rows"
    schemes = {row["scheme"] for row in rows}
    assert "DRed" in schemes and "Absorption Lazy" in schemes

    def final(scheme):
        candidates = [r for r in rows if r["scheme"] == scheme and r["converged"]]
        return candidates[-1] if candidates else None

    dred, lazy, eager = final("DRed"), final("Absorption Lazy"), final("Absorption Eager")
    # Insertion-only workload: provenance costs extra, lazy costs less than eager.
    assert dred is not None and lazy is not None
    assert dred["communication_MB"] <= lazy["communication_MB"]
    if eager is not None:
        assert lazy["communication_MB"] <= eager["communication_MB"]
