"""Batch-throughput benchmark — the batch-first delta pipeline's win.

Runs the figure-11/12 dense topology twice per scheme (batched vs the
historical tuple-at-a-time pipeline), deleting a figure-8-style fraction of
the links, and checks the refactor's acceptance bar: strictly fewer BDD
kernel operations and at least a 2x reduction in purge-port wire messages
during the maintenance phase, with identical final views.

(The original bar was a 2x reduction in kernel operations as well.  The
iterative kernel's prepared restrictors and support-disjointness skip now
eliminate, *inside the kernel*, most of the redundant per-update restriction
work that batching used to be the only defence against — so the sequential
pipeline improved more than the batched one and the raw op-count gap
narrowed.  Batching's structural wins — coalesced purge multicasts, fewer
messages, lower wall time — are unchanged and still asserted.)
"""

from benchmarks.conftest import report_figure, run_once
from repro.harness import run_batch_throughput


def test_batch_throughput_reductions(benchmark, experiment_config):
    rows = run_once(benchmark, run_batch_throughput, experiment_config)
    report_figure(rows, title="Batch throughput: batched vs tuple-at-a-time pipeline")
    assert rows

    by_key = {(r["scheme"], r["pipeline"]): r for r in rows if r["converged"]}
    checked = 0
    for scheme in ("Absorption Lazy", "Absorption Eager"):
        batched = by_key.get((scheme, "batched"))
        sequential = by_key.get((scheme, "tuple-at-a-time"))
        if batched is None or sequential is None:
            continue
        checked += 1
        # Exact view equivalence between the two pipelines.
        assert batched["view_size"] == sequential["view_size"]
        # Strictly fewer BDD kernel operations during maintenance.
        assert batched["bdd_apply_ops"] <= sequential["bdd_apply_ops"], (
            f"{scheme}: BDD ops {batched['bdd_apply_ops']} vs "
            f"{sequential['bdd_apply_ops']} (batching must not add kernel work)"
        )
        # >= 2x fewer purge wire messages (coalesced deletion multicast).
        assert batched["purge_messages"] * 2 <= sequential["purge_messages"], (
            f"{scheme}: purge messages {batched['purge_messages']} vs "
            f"{sequential['purge_messages']} (< 2x reduction)"
        )
        # Batching must never ship *more* bytes.
        assert batched["communication_MB"] <= sequential["communication_MB"] * 1.01
    assert checked >= 1, "at least one scheme must converge under both pipelines"
