"""Ablation — provenance encoding: BDDs vs minimised sum-of-products.

The paper chooses reduced ordered BDDs as the physical encoding of absorption
provenance (Section 4.1); the alternative it mentions is normalising to
sum-of-products with explicit absorption.  This ablation materialises the
reachable view and compares the total and per-tuple encoded sizes of the two
representations of the *same* provenance.
"""

from benchmarks.conftest import report_figure, run_once
from repro.harness import run_ablation_provenance_encoding


def test_ablation_provenance_encoding(benchmark, experiment_config):
    rows = run_once(benchmark, run_ablation_provenance_encoding, experiment_config)
    report_figure(rows, title="Ablation: absorption provenance encoding (BDD vs sum-of-products)")
    assert len(rows) == 2
    by_encoding = {row["encoding"]: row for row in rows}
    assert set(by_encoding) == {"BDD (reduced ordered)", "minimised sum-of-products"}
    assert all(row["tuples"] > 0 for row in rows)
