"""Chaos plane — seeded fault injection gated by bit-identical parity.

Runs the combined chaos workload (power-law graph, skewed insertions,
deletion storm) under the configured chaos profile on the simulator backend
for both absorption schemes, plus a real-SIGKILL run on the process backend
and a deliberately-degraded run, and gates every non-degraded row on the
parity harness: the converged view (and, for eager provenance, the canonical
annotations) must equal the fault-free reference bit-for-bit.
"""

from benchmarks.conftest import report_figure, run_once
from repro.harness import run_chaos


def test_chaos_parity_gate(benchmark, experiment_config):
    rows = run_once(benchmark, run_chaos, experiment_config)
    report_figure(
        rows, title="Chaos plane: seeded fault injection vs fault-free parity"
    )
    assert rows, "the experiment produced no rows"

    gated = [row for row in rows if row.get("chaos_profile") != "degraded"]
    assert gated, "no parity-gated rows"
    backends = {row["backend"] for row in gated}
    assert {"sim", "process"} <= backends, "both backends must be exercised"

    for row in gated:
        label = f"{row['scheme']}/{row['backend']}/{row['chaos_profile']}"
        assert row.get("converged", True), f"{label} did not converge"
        assert row["parity_passed"] is True, f"{label} failed the parity gate"
        assert row["view_match"] is True, f"{label} diverged from the reference"

    # The sim rows must actually have injected faults (not a vacuous pass)...
    sim_rows = [row for row in gated if row["backend"] == "sim"]
    assert any(row.get("chaos_dropped_copies", 0) > 0 for row in sim_rows)
    assert any(row.get("chaos_duplicates_injected", 0) > 0 for row in sim_rows)
    # ...with every injected duplicate suppressed exactly once.
    for row in sim_rows:
        assert row.get("chaos_duplicates_injected", 0) == row.get(
            "chaos_duplicates_suppressed", 0
        ), f"{row['scheme']} leaked a duplicate delivery"

    # The process row's kills were real and every victim respawned.
    process_rows = [row for row in gated if row["backend"] == "process"]
    for row in process_rows:
        assert row.get("worker_kills", 0) >= 1
        assert row.get("worker_respawns", 0) >= row.get("worker_kills", 0)

    # The degraded row exists and served stale-tagged views instead of raising.
    degraded = [row for row in rows if row.get("chaos_profile") == "degraded"]
    assert len(degraded) == 1
    assert degraded[0]["converged"]
    assert degraded[0]["stale_partitions"] >= 1
