"""Figure 11 — scaling the number of links, insertion workload.

Absorption Eager vs Lazy over dense and sparse transit-stub topologies of
increasing size.  Expected shape (Section 7.3): dense topologies are costlier
than sparse ones (more alternative derivations), and lazy propagation is the
difference between finishing quickly and blowing past the time budget on the
larger dense networks.
"""

from benchmarks.conftest import report_figure, run_once
from repro.harness import run_figure11


def test_figure11_scaling_links_insertions(benchmark, experiment_config):
    rows = run_once(benchmark, run_figure11, experiment_config)
    report_figure(rows, title="Figure 11: increasing the number of links, insertion workload")
    assert rows

    def series(scheme_suffix, density):
        return [
            r
            for r in rows
            if r["scheme"].endswith(scheme_suffix) and r["density"] == density and r["converged"]
        ]

    lazy_dense = series("Lazy Dense", "dense")
    eager_dense = series("Eager Dense", "dense")
    assert lazy_dense, "Lazy Dense should converge at every size"
    if eager_dense:
        largest_common = min(len(lazy_dense), len(eager_dense)) - 1
        assert (
            lazy_dense[largest_common]["communication_MB"]
            <= eager_dense[largest_common]["communication_MB"]
        )
