"""Ablation — distributed incremental maintenance vs centralized recomputation.

Compares deleting 20 % of the links under the distributed Absorption Lazy
engine against recomputing the view from scratch with the centralized
semi-naive evaluator.  Both must agree on the final view; the comparison shows
what the incremental machinery buys (and costs) relative to the simplest
correct baseline.
"""

from benchmarks.conftest import report_figure, run_once
from repro.harness import run_ablation_centralized_maintenance


def test_ablation_centralized_maintenance(benchmark, experiment_config):
    rows = run_once(benchmark, run_ablation_centralized_maintenance, experiment_config)
    report_figure(rows, title="Ablation: distributed incremental maintenance vs centralized recompute")
    assert len(rows) == 2
    views = {row["view_size"] for row in rows}
    assert len(views) == 1, "both approaches must produce the same view"
