"""Figure 10 — sensor-region query as triggered sensors are untriggered.

After triggering every sensor, growing fractions are untriggered (their
proximity edges and seed tuples are deleted).  Expected shape: as in Figure 8,
DRed pays recomputation-like costs per deletion batch while absorption
provenance removes exactly the no-longer-derivable memberships.
"""

from benchmarks.conftest import report_figure, run_once
from repro.harness import run_figure10


def test_figure10_region_deletions(benchmark, experiment_config):
    rows = run_once(benchmark, run_figure10, experiment_config)
    report_figure(rows, title="Figure 10: region query computation as deletions are performed")
    assert rows

    def totals(scheme):
        candidates = [r for r in rows if r["scheme"] == scheme and r["converged"]]
        return candidates[-1] if candidates else None

    dred, lazy = totals("DRed"), totals("Absorption Lazy")
    assert dred is not None and lazy is not None
    assert lazy["convergence_time_s"] <= dred["convergence_time_s"]
