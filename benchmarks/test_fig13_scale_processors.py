"""Figure 13 — varying the number of query-processor nodes.

DRed vs Absorption Lazy on the reachable workload (insert everything, then
delete 20 %) while the cluster grows from 4 to 24 processors.  Expected shape
(Section 7.3): per-node state shrinks with more processors, convergence time
falls until the 24-node configuration pays the slower inter-cluster link, and
DRed remains costlier than Absorption Lazy throughout.
"""

from benchmarks.conftest import report_figure, run_once
from repro.harness import run_figure13


def test_figure13_scaling_processors(benchmark, experiment_config):
    rows = run_once(benchmark, run_figure13, experiment_config)
    report_figure(rows, title="Figure 13: varying the number of physical query processing nodes")
    assert rows
    lazy = [r for r in rows if r["scheme"] == "Absorption Lazy" and r["converged"]]
    dred = [r for r in rows if r["scheme"] == "DRed" and r["converged"]]
    assert lazy and dred
    # More processors -> less state per node.
    assert lazy[-1]["per_node_state_MB"] <= lazy[0]["per_node_state_MB"]
    # DRed takes longer to converge than Absorption Lazy at every cluster size
    # (its deletion handling re-derives the surviving view).  At the reduced
    # benchmark scale the *byte* totals can favour DRed because the
    # insertion phase (where provenance is pure overhead) dominates; the
    # paper-scale byte gap is discussed in EXPERIMENTS.md.
    for dred_row, lazy_row in zip(dred, lazy):
        assert dred_row["convergence_time_s"] >= lazy_row["convergence_time_s"]
