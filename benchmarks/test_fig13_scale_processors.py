"""Figure 13 — varying the number of query-processor nodes.

DRed vs Absorption Lazy on the reachable workload (insert everything, then
delete 20 %) while the cluster grows from 4 to 24 processors.  Expected shape
(Section 7.3): per-node state shrinks with more processors, convergence time
falls until the 24-node configuration pays the slower inter-cluster link, and
DRed remains costlier than Absorption Lazy throughout.

The process-backend variants measure what the simulator cannot: *real*
multi-core scale-out.  The same deletion-heavy workload runs with the nodes
sharded across OS worker processes; per-worker utilization comes from the
merged metrics registries, and on a multi-core host the 4-worker run must
beat the 1-worker run on wall-clock by a material margin.
"""

import os
import time

import pytest

from benchmarks.conftest import report_figure, run_once
from repro.harness import run_figure13
from repro.queries import build_executor, reachability_plan
from repro.workloads.topology import TransitStubConfig, generate_topology
from repro.workloads.updates import deletion_sample

#: The deletion-heavy scale-out workload: dense topology, delete 60% of the
#: base — deletions are where absorption's BDD kernel does real CPU work.
_SCALEOUT_NODES = 8
_SCALEOUT_DELETION_RATIO = 0.6


def test_figure13_scaling_processors(benchmark, experiment_config):
    rows = run_once(benchmark, run_figure13, experiment_config)
    report_figure(rows, title="Figure 13: varying the number of physical query processing nodes")
    assert rows
    lazy = [r for r in rows if r["scheme"] == "Absorption Lazy" and r["converged"]]
    dred = [r for r in rows if r["scheme"] == "DRed" and r["converged"]]
    assert lazy and dred
    # More processors -> less state per node.
    assert lazy[-1]["per_node_state_MB"] <= lazy[0]["per_node_state_MB"]
    # DRed takes longer to converge than Absorption Lazy at every cluster size
    # (its deletion handling re-derives the surviving view).  At the reduced
    # benchmark scale the *byte* totals can favour DRed because the
    # insertion phase (where provenance is pure overhead) dominates; the
    # paper-scale byte gap is discussed in EXPERIMENTS.md.
    for dred_row, lazy_row in zip(dred, lazy):
        assert dred_row["convergence_time_s"] >= lazy_row["convergence_time_s"]


def _scaleout_workload(nodes_per_stub=2):
    topology = generate_topology(
        TransitStubConfig(nodes_per_stub=nodes_per_stub, dense=True, seed=7)
    )
    links = topology.link_tuples()
    return links, deletion_sample(links, _SCALEOUT_DELETION_RATIO, seed=7)


def _run_process_backend(links, deletions, workers):
    """One insert-all-delete-heavy cycle on the process backend; returns a row."""
    executor = build_executor(
        reachability_plan(),
        "Absorption Eager",
        node_count=_SCALEOUT_NODES,
        backend="process",
        workers=workers,
    )
    try:
        wall_start = time.perf_counter()
        executor.insert_edges(links)
        executor.delete_edges(deletions)
        wall_seconds = time.perf_counter() - wall_start
        snapshot = executor.metrics_registry.snapshot()
        view_size = len(executor.view())
    finally:
        executor.close()
    row = {
        "figure": "13",
        "scheme": "Absorption Eager",
        "workers": workers,
        "wall_clock_s": round(wall_seconds, 4),
        "view_size": view_size,
    }
    for wid in range(workers):
        busy = snapshot[f"workers.w{wid}.work.busy_seconds"]
        elapsed = snapshot[f"workers.w{wid}.elapsed_s"]
        row[f"w{wid}_utilization"] = round(busy / elapsed, 4) if elapsed else 0.0
    return row, snapshot


def test_figure13_process_backend_utilization():
    """Per-worker utilization is observable through the merged metrics."""
    links, deletions = _scaleout_workload()
    row, snapshot = _run_process_backend(links, deletions, workers=2)
    report_figure([row], title="Figure 13 (process backend): per-worker utilization")
    # Both workers did real handler work, and the unprefixed aggregate is the
    # sum of the per-worker views.
    per_worker = [snapshot[f"workers.w{wid}.work.busy_seconds"] for wid in range(2)]
    assert all(busy > 0 for busy in per_worker)
    assert abs(sum(per_worker) - snapshot["workers.work.busy_seconds"]) < 1e-6
    assert row["w0_utilization"] > 0 and row["w1_utilization"] > 0


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4,
    reason="wall-clock scale-out needs at least 4 physical cores",
)
def test_figure13_process_backend_speedup():
    """4 workers beat 1 worker by > 1.2x wall-clock on the deletion-heavy workload."""
    links, deletions = _scaleout_workload(nodes_per_stub=3)
    single, _ = _run_process_backend(links, deletions, workers=1)
    quad, _ = _run_process_backend(links, deletions, workers=4)
    speedup = single["wall_clock_s"] / quad["wall_clock_s"]
    quad["speedup_vs_1_worker"] = round(speedup, 3)
    report_figure(
        [single, quad], title="Figure 13 (process backend): multi-core scale-out"
    )
    assert quad["view_size"] == single["view_size"]
    assert speedup > 1.2, (
        f"4-worker run must be > 1.2x faster than 1-worker "
        f"({single['wall_clock_s']:.2f}s -> {quad['wall_clock_s']:.2f}s, {speedup:.2f}x)"
    )
