"""Tracing overhead benchmark — the zero-overhead-off contract, measured.

Two gates:

* **off** — with no tracer installed, the instrumented hot paths must hold
  ``None`` (a pointer comparison per delivered batch, not even a null-object
  method call), checked structurally, and the wall time of the fig-11/12
  workload must stay within a generous anti-flake factor of itself run twice
  (regression canary for accidentally re-enabling per-event work);
* **on** — a fully traced run of the same workload must finish within ~15 %
  of the untraced wall clock (wide margin: the bar is 1.5x so a loaded CI
  runner never flakes; the observed ratio is printed for trend-watching).
"""

import time

from benchmarks.conftest import report_figure, run_once
from repro.data.batch import BatchPolicy
from repro.engine.strategy import ExecutionStrategy
from repro.obs.flight import FlightRecorder
from repro.obs.trace import Tracer, install_tracer
from repro.queries import build_executor, reachability_plan
from repro.workloads.topology import TransitStubConfig, generate_topology
from repro.workloads.updates import deletion_sample


def _run_workload():
    """The fig-11/12 dense insertion+deletion workload, one absorption scheme."""
    config = TransitStubConfig(nodes_per_stub=2, dense=True, seed=7)
    links = generate_topology(config).link_tuples()
    executor = build_executor(
        reachability_plan(),
        ExecutionStrategy.absorption_lazy(),
        node_count=12,
        batch_policy=BatchPolicy(max_batch=64),
    )
    started = time.perf_counter()
    executor.insert_edges(links)
    executor.delete_edges(deletion_sample(links, 0.2))
    return executor, time.perf_counter() - started


def test_disabled_tracer_is_absent_from_hot_paths():
    """Untraced executors cache ``None``, not a tracer object, everywhere hot."""
    install_tracer(None)
    executor, _ = _run_workload()
    assert executor.network._tracer is None
    assert executor.network.tracer is None
    for node in executor.nodes:
        assert node._tracer is None
        assert node.router.tracer is None


def test_traced_overhead_within_bar(benchmark):
    def measure():
        install_tracer(None)
        _, untraced_s = _run_workload()
        tracer = Tracer()
        install_tracer(tracer)
        try:
            traced_executor, traced_s = _run_workload()
        finally:
            install_tracer(None)
        tracer.finish()
        return {
            "untraced_s": round(untraced_s, 4),
            "traced_s": round(traced_s, 4),
            "ratio": round(traced_s / untraced_s, 3),
            "events": len(tracer.events),
            "nodes": len(traced_executor.nodes),
        }

    row = run_once(benchmark, measure)
    report_figure([row], title="Tracing overhead (fig-11/12 workload, trace on vs off)")
    assert row["events"] > 1000, "traced run produced implausibly few events"
    # Target is <1.15x; the gate is 1.5x so CI never flakes on a noisy runner.
    assert row["ratio"] < 1.5, (
        f"tracing overhead {row['ratio']}x exceeds the 1.5x gate "
        f"(traced {row['traced_s']}s vs untraced {row['untraced_s']}s)"
    )


def test_flight_recorder_overhead_within_bar(benchmark):
    """The always-on contract: bounded rings must cost < 1.2x of untraced.

    The flight recorder pays the same per-event instrumentation as the full
    tracer but never grows — eviction replaces list append — so its bar is
    tighter than the tracer's 1.5x.  Best-of-two on both sides squeezes out
    scheduler noise.
    """

    def measure():
        install_tracer(None)
        untraced_s = min(_run_workload()[1] for _ in range(2))
        recorder = FlightRecorder()
        install_tracer(recorder)
        try:
            flight_s = min(_run_workload()[1] for _ in range(2))
        finally:
            install_tracer(None)
        return {
            "untraced_s": round(untraced_s, 4),
            "flight_s": round(flight_s, 4),
            "ratio": round(flight_s / untraced_s, 3),
            "retained": recorder.retained_records(),
            "evicted": recorder.evicted_records(),
        }

    row = run_once(benchmark, measure)
    # Re-run once outside the timer to inspect ring invariants structurally.
    recorder = FlightRecorder()
    install_tracer(recorder)
    try:
        _run_workload()
    finally:
        install_tracer(None)
    report_figure([row], title="Flight recorder overhead (fig-11/12 workload, rings on vs off)")
    assert row["retained"] > 0, "flight recorder retained nothing"
    assert all(
        len(ring.slots) == ring.capacity for ring in recorder._rings.values()
    ), "a ring outgrew its preallocated capacity"
    assert row["ratio"] < 1.2, (
        f"flight-recorder overhead {row['ratio']}x exceeds the 1.2x gate "
        f"(flight {row['flight_s']}s vs untraced {row['untraced_s']}s)"
    )
