"""Figure 8 — ``reachable`` view maintenance as links are deleted.

After preloading the full topology, growing fractions of the links are
deleted.  Expected shape (Section 7.2): DRed is by far the most expensive in
communication and convergence time (over-delete + re-derive approaches full
recomputation per batch), absorption provenance handles deletions directly,
relative provenance sits in between with larger annotations.
"""

from benchmarks.conftest import report_figure, run_once
from repro.harness import run_figure8


def test_figure8_reachable_deletions(benchmark, experiment_config):
    rows = run_once(benchmark, run_figure8, experiment_config)
    report_figure(rows, title="Figure 8: reachable query computation as deletions are performed")
    assert rows

    def final(scheme):
        candidates = [r for r in rows if r["scheme"] == scheme and r["converged"]]
        return candidates[-1] if candidates else None

    dred, lazy = final("DRed"), final("Absorption Lazy")
    assert dred is not None and lazy is not None
    # Deletion handling is where absorption provenance pays off.
    assert lazy["communication_MB"] < dred["communication_MB"]
    assert lazy["convergence_time_s"] < dred["convergence_time_s"]
    relative = final("Relative Lazy")
    if relative is not None:
        # Relative provenance ships larger annotations than absorption.
        assert relative["per_tuple_provenance_B"] >= lazy["per_tuple_provenance_B"]
