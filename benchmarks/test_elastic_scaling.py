"""Elastic — scale a running cluster from N to 2N processors and back down.

Extends Figure 13 from static cluster-size comparison to *dynamic* scaling:
two static reference runs (N and 2N processors) bracket an elastic run that
admits N processors spread across the insertion stream, rebalances against
the hotspot skew, and decommissions them again across the deletion stream.
Both elastic phases must converge to the exact networkx ground truth — stale-
epoch batches are forwarded, never dropped — and the table reports what the
elasticity costs: moved state bytes (checkpoint-codec measured) and
misrouted-batch counts.
"""

from benchmarks.conftest import report_figure, run_once
from repro.harness import run_elastic_scaling


def test_elastic_scale_out_and_in(benchmark, experiment_config):
    rows = run_once(benchmark, run_elastic_scaling, experiment_config)
    report_figure(rows, title="Elastic: N -> 2N -> N processors mid-stream")
    assert rows, "the experiment produced no rows"
    by_phase = {row["phase"]: row for row in rows if "phase" in row}
    assert {"static", "scale-out", "scale-in"} <= set(by_phase)

    for phase in ("scale-out", "scale-in"):
        row = by_phase[phase]
        assert row["converged"], f"{phase} did not converge"
        assert row["view_correct"], f"{phase} diverged from the ground truth"

    # Scaling must actually move state between nodes, and report it.
    assert by_phase["scale-out"]["moved_state_KB"] > 0
    assert by_phase["scale-in"]["moved_state_KB"] > 0
    # The static reference points converge too (the figure-13 endpoints).
    static_rows = [row for row in rows if row.get("phase") == "static"]
    assert len(static_rows) == 2
    assert all(row["view_correct"] for row in static_rows)
