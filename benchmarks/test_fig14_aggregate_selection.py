"""Figure 14 — aggregate selections on the shortest/cheapest path query.

Multi AggSel (prune on cost and hop count), Single AggSel (cost only) and No
AggSel over dense and sparse topologies.  Expected shape (Section 7.4):
aggregate selection is what makes the path query tractable at all — No AggSel
is the most expensive configuration by a wide margin (the paper reports it not
completing on dense topologies), and pruning on both aggregates at once is
cheaper than pruning on one.
"""

from benchmarks.conftest import report_figure, run_once
from repro.harness import run_figure14


def test_figure14_aggregate_selection(benchmark, experiment_config):
    rows = run_once(benchmark, run_figure14, experiment_config)
    report_figure(rows, title="Figure 14: aggregate selections on shortestPath / cheapestCostPath")
    assert rows

    def row(label, density):
        matches = [r for r in rows if r["scheme"] == label and r["density"] == density]
        return matches[0] if matches else None

    for density in ("dense", "sparse"):
        multi = row("Multi AggSel", density)
        single = row("Single AggSel", density)
        none = row("No AggSel", density)
        assert multi is not None and single is not None and none is not None
        if multi["converged"] and none["converged"]:
            assert multi["communication_MB"] <= none["communication_MB"]
        if multi["converged"] and single["converged"]:
            assert multi["communication_MB"] <= single["communication_MB"] * 1.25
