"""Figure 9 — sensor-region query as sensors are triggered.

The region query runs over a simulated sensor grid with seed groups; growing
fractions of the sensors are triggered.  The trends mirror Figure 7 at lower
absolute cost (the proximity graph is local, so derivations are shorter).
"""

from benchmarks.conftest import report_figure, run_once
from repro.harness import run_figure9


def test_figure9_region_insertions(benchmark, experiment_config):
    rows = run_once(benchmark, run_figure9, experiment_config)
    report_figure(rows, title="Figure 9: region query computation as insertions are performed")
    assert rows

    def final(scheme):
        candidates = [r for r in rows if r["scheme"] == scheme and r["converged"]]
        return candidates[-1] if candidates else None

    dred, lazy = final("DRed"), final("Absorption Lazy")
    assert dred is not None and lazy is not None
    # Insertion-only: set-semantics execution does not pay the provenance overhead.
    assert dred["per_tuple_provenance_B"] <= lazy["per_tuple_provenance_B"]
