"""Churn — node crashes mid-insertion-stream, recovery-policy comparison.

Runs the insertion workload three times: failure-free, then with a seeded
crash/recover cycle recovered by *checkpoint+replay* (restore the latest
checkpoint, replay the write-ahead-log suffix, redeliver held messages) and
by *provenance-purge* (absorb the dead node's base tuples as deletions via
the paper's zero-out-the-variable path, then reseed the cold node from its
peers).  Both recovered runs must converge to the exact networkx ground
truth; the table reports what each policy pays for it in convergence time
and bytes shipped relative to the failure-free run.
"""

from benchmarks.conftest import report_figure, run_once
from repro.harness import run_churn_recovery


def test_churn_recovery_policies(benchmark, experiment_config):
    rows = run_once(benchmark, run_churn_recovery, experiment_config)
    report_figure(rows, title="Churn: crash mid-insertion-stream, per recovery policy")
    assert rows, "the experiment produced no rows"
    by_policy = {row["policy"]: row for row in rows}
    assert {"no-failure", "checkpoint-replay", "provenance-purge"} <= set(by_policy)

    for policy, row in by_policy.items():
        assert row["converged"], f"{policy} did not converge"
        assert row["view_correct"], f"{policy} diverged from the ground truth"

    # Recovering from a crash can only cost extra traffic, never less.
    baseline = by_policy["no-failure"]["communication_MB"]
    for policy in ("checkpoint-replay", "provenance-purge"):
        assert by_policy[policy]["communication_MB"] >= baseline * 0.99
