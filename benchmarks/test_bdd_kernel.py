"""Microbenchmarks for the iterative BDD kernel (apply, n-ary ops, GC).

These run under the same pytest-benchmark harness as the figure benchmarks
(the CI perf job), so the kernel-level perf trajectory is recorded next to
the end-to-end numbers.  Workloads are synthetic but shaped like absorption
provenance: many small disjunction/conjunction deltas over a shared pool of
monotone functions, plus a churn loop that makes most of the table garbage.
"""

import pytest

from repro.bdd import BDDManager

#: Pool shape: enough variables/products for non-trivial sharing, small
#: enough that one benchmark round stays well under a second.
VARIABLES = 48
PRODUCTS = 160
CHURN_ROUNDS = 12


def _product_pool(manager):
    """Monotone annotations: conjunctions of 3 consecutive variables."""
    variables = [manager.variable(f"v{i}") for i in range(VARIABLES)]
    pool = []
    for index in range(PRODUCTS):
        first = index % (VARIABLES - 3)
        pool.append(manager.conjoin_many(variables[first : first + 3]))
    return pool


def _apply_workload():
    manager = BDDManager()
    pool = _product_pool(manager)
    acc = manager.false
    for annotation in pool:
        acc = acc | annotation
        acc = acc & ~pool[(annotation.node * 7) % len(pool)]
    return manager.stats.apply_calls


def _disjoin_many_workload():
    manager = BDDManager()
    pool = _product_pool(manager)
    for start in range(0, PRODUCTS - 16, 4):
        manager.disjoin_many(pool[start : start + 16])
    return manager.stats.apply_calls


def _gc_churn_workload():
    manager = BDDManager(gc_threshold=0.25, gc_min_table=512)
    variables = [manager.variable(f"v{i}") for i in range(VARIABLES)]
    live = manager.false
    for round_ in range(CHURN_ROUNDS):
        # Grow a disjunction, then delete most of its support: the table
        # fills with dead nodes and the automatic GC must reclaim them.
        for index in range(0, VARIABLES - 4, 2):
            live = live | manager.conjoin_many(variables[index : index + 3])
        live = live.without([f"v{i}" for i in range(VARIABLES) if i % 4 != round_ % 4])
    stats = manager.gc_stats()
    return stats["nodes_reclaimed"], stats["peak_table_size"]


@pytest.mark.benchmark(group="bdd-kernel")
def test_apply_chain_microbench(benchmark):
    calls = benchmark.pedantic(_apply_workload, rounds=3, iterations=1)
    assert calls > 0


@pytest.mark.benchmark(group="bdd-kernel")
def test_disjoin_many_microbench(benchmark):
    calls = benchmark.pedantic(_disjoin_many_workload, rounds=3, iterations=1)
    assert calls > 0


@pytest.mark.benchmark(group="bdd-kernel")
def test_gc_churn_microbench(benchmark):
    reclaimed, peak = benchmark.pedantic(_gc_churn_workload, rounds=3, iterations=1)
    # The collector must actually reclaim, and the live table must stay
    # bounded: across the churn rounds several times the peak table size is
    # allocated and reclaimed again.
    assert reclaimed > 4 * peak
    assert peak < 4096
