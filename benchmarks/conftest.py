"""Shared fixtures for the per-figure benchmarks.

Every benchmark runs one experiment driver exactly once (``pedantic`` with one
round) and prints the resulting table — the same series the paper's figure
plots.  The scale is the laptop-friendly ``DEFAULT_CONFIG``; see EXPERIMENTS.md
for the mapping to the paper's scale and for recorded reference output.
"""

from typing import Dict, List, Sequence

import pytest

from repro.harness.config import DEFAULT_CONFIG, QUICK_CONFIG
from repro.harness.report import format_rows

#: Tables recorded by the benchmarks during the session, printed in the
#: terminal summary (so they appear even under pytest's default capture).
_RECORDED_TABLES: List[str] = []


def report_figure(rows: Sequence[Dict], title: str) -> None:
    """Print a figure's table and queue it for the end-of-run summary."""
    table = format_rows(rows, title=title)
    print(table)
    _RECORDED_TABLES.append(table)


def pytest_terminal_summary(terminalreporter):
    if not _RECORDED_TABLES:
        return
    terminalreporter.ensure_newline()
    terminalreporter.section("reproduced figures (paper metrics per scheme)", sep="=")
    for table in _RECORDED_TABLES:
        terminalreporter.write_line("")
        for line in table.splitlines():
            terminalreporter.write_line(line)


def pytest_addoption(parser):
    parser.addoption(
        "--quick-experiments",
        action="store_true",
        default=False,
        help="run the benchmark experiments at the smallest (smoke-test) scale",
    )


@pytest.fixture(scope="session")
def experiment_config(request):
    """The experiment configuration benchmarks run with."""
    if request.config.getoption("--quick-experiments"):
        return QUICK_CONFIG
    return DEFAULT_CONFIG


def run_once(benchmark, func, *args, **kwargs):
    """Run an experiment driver exactly once under pytest-benchmark."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
