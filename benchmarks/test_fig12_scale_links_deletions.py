"""Figure 12 — scaling the number of links, deleting 20 % of them.

Same topologies as Figure 11; after inserting every link, 20 % are deleted.
The reported metrics cover the deletion phase.  Expected shape: costs grow
with network size, dense costs more than sparse, lazy propagation stays ahead
of eager propagation.
"""

from benchmarks.conftest import report_figure, run_once
from repro.harness import run_figure12


def test_figure12_scaling_links_deletions(benchmark, experiment_config):
    rows = run_once(benchmark, run_figure12, experiment_config)
    report_figure(rows, title="Figure 12: increasing the number of links, deletion workload")
    assert rows
    lazy_dense = [
        r for r in rows if r["scheme"] == "Lazy Dense" and r["converged"]
    ]
    assert lazy_dense, "Lazy Dense should converge at every size"
    # Cost grows with the size of the network.
    assert lazy_dense[-1]["communication_MB"] >= lazy_dense[0]["communication_MB"]
