"""Routing-layer microbenchmark — the time split the columnar refactor must win.

After the BDD kernel rework, per-phase telemetry showed the old per-update
routing walk costing ~3x the kernel on the fig-11/12 Absorption deletion
phases.  The columnar routing layer (one bulk owner lookup per batch, cached
key→owner columns, fused admission) must invert that: the directly-measured
``routing_time_s`` has to stay below ``kernel_time_s`` on the deletion phases,
with a wide margin so the gate never flakes on a loaded runner.
"""

from benchmarks.conftest import report_figure, run_once
from repro.data.batch import BatchPolicy
from repro.engine.strategy import ExecutionStrategy
from repro.queries import build_executor, reachability_plan
from repro.workloads.topology import TransitStubConfig, generate_topology
from repro.workloads.updates import deletion_sample


def _run_routing_split():
    """The fig-11/12 workload (transit-stub, dense, 20 % deletions), both
    absorption strategies, returning one row per (scheme, phase) with the
    kernel/routing/operator decomposition."""
    config = TransitStubConfig(nodes_per_stub=2, dense=True, seed=7)
    topo = generate_topology(config)
    links = topo.link_tuples()
    rows = []
    for label in ("Absorption Lazy", "Absorption Eager"):
        strategy = ExecutionStrategy.by_name(label)
        executor = build_executor(
            reachability_plan(), strategy, node_count=12,
            batch_policy=BatchPolicy(max_batch=64),
        )
        insert_phase = executor.insert_edges(links)
        delete_phase = executor.delete_edges(deletion_sample(links, 0.2))
        for phase_label, phase in (("insert", insert_phase), ("delete", delete_phase)):
            kernel = phase.kernel
            rows.append(
                {
                    "scheme": label,
                    "phase": phase_label,
                    "kernel_time_s": round(kernel.kernel_time_s, 6),
                    "routing_time_s": round(kernel.routing_time_s, 6),
                    "operator_time_s": round(kernel.operator_time_s, 6),
                    "routing_bulk_lookups": kernel.routing_bulk_lookups,
                    "routing_cache_hits": kernel.routing_cache_hits,
                }
            )
    return rows


def test_routing_time_stays_below_kernel_time(benchmark):
    rows = run_once(benchmark, _run_routing_split)
    report_figure(
        rows, title="Routing layer: per-phase time split (fig-11/12 workload)"
    )
    assert rows
    for row in rows:
        # The columnar path must actually be exercised: owners come from bulk
        # lookups, not a silent fallback to per-update scalar calls.
        assert row["routing_bulk_lookups"] > 0, row
    deletions = [row for row in rows if row["phase"] == "delete"]
    assert len(deletions) == 2
    for row in deletions:
        assert row["routing_time_s"] < row["kernel_time_s"], (
            f"{row['scheme']}: routing {row['routing_time_s']}s should stay "
            f"below kernel {row['kernel_time_s']}s on the deletion phase"
        )
